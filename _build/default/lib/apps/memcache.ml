module R = Rex_core

let factory ?(capacity = 100_000) ?(op_cost = 8e-6) () : R.App.factory =
 fun api ->
  let cache_lock = R.Api.lock api "mc.cache" in
  let slabs_lock = R.Api.lock api "mc.slabs" in
  let stats_lock = R.Api.lock api "mc.stats" in
  let maintenance = R.Api.cond api "mc.maintenance" in
  let table : (string, string) Hashtbl.t = Hashtbl.create 1024 in
  let lru : string Queue.t = Queue.create () in
  let hits = ref 0 and misses = ref 0 and sets = ref 0 and evictions = ref 0 in
  let under_lock_cost = op_cost *. 0.75 in
  let outside_cost = op_cost *. 0.25 in
  (* The slab maintainer thread: woken when eviction pressure builds. *)
  R.Api.add_timer api ~name:"slab-maintainer" ~interval:10e-3 (fun () ->
      Rexsync.Lock.with_lock slabs_lock (fun () ->
          (* page reassignment bookkeeping *)
          R.Api.work api 2e-6;
          Rexsync.Condvar.signal maintenance));
  let bump counter =
    Rexsync.Lock.with_lock stats_lock (fun () ->
        R.Api.work api (op_cost *. 0.05);
        incr counter)
  in
  let evict_if_needed () =
    while Hashtbl.length table > capacity do
      match Queue.take_opt lru with
      | None -> Hashtbl.reset table
      | Some victim ->
        if Hashtbl.mem table victim then begin
          (* freeing an item touches the slabs *)
          Rexsync.Lock.with_lock slabs_lock (fun () -> R.Api.work api 1e-6);
          Hashtbl.remove table victim;
          incr evictions
        end
    done
  in
  let execute ~request =
    R.Api.work api outside_cost;
    match Util.words request with
    | [ "SET"; key; value ] ->
      Rexsync.Lock.with_lock cache_lock (fun () ->
          R.Api.work api under_lock_cost;
          if not (Hashtbl.mem table key) then Queue.push key lru;
          Hashtbl.replace table key value;
          evict_if_needed ());
      bump sets;
      "STORED"
    | [ "GET"; key ] ->
      let v =
        Rexsync.Lock.with_lock cache_lock (fun () ->
            R.Api.work api under_lock_cost;
            Hashtbl.find_opt table key)
      in
      (match v with
      | Some v ->
        bump hits;
        v
      | None ->
        bump misses;
        "NOTFOUND")
    | [ "DEL"; key ] ->
      Rexsync.Lock.with_lock cache_lock (fun () ->
          R.Api.work api under_lock_cost;
          Hashtbl.remove table key);
      "DELETED"
    | [ "STATS" ] ->
      Rexsync.Lock.with_lock stats_lock (fun () ->
          Printf.sprintf "hits=%d misses=%d sets=%d evictions=%d" !hits !misses
            !sets !evictions)
    | _ -> "ERR:bad-request"
  in
  let query ~request =
    match Util.words request with
    | [ "GET"; key ] ->
      Rexsync.Lock.with_lock cache_lock (fun () ->
          R.Api.work api under_lock_cost;
          Option.value (Hashtbl.find_opt table key) ~default:"NOTFOUND")
    | [ "STATS" ] ->
      Printf.sprintf "hits=%d misses=%d sets=%d evictions=%d" !hits !misses
        !sets !evictions
    | _ -> "ERR:bad-query"
  in
  let bindings () =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) table [] |> List.sort compare
  in
  {
    R.App.name = "memcached";
    execute;
    query;
    write_checkpoint =
      (fun sink ->
        Codec.write_list sink
          (fun b (k, v) ->
            Codec.write_string b k;
            Codec.write_string b v)
          (bindings ());
        (* the eviction order is state too: replayed evictions follow it *)
        Codec.write_list sink Codec.write_string
          (List.of_seq (Queue.to_seq lru));
        Codec.write_uvarint sink !hits;
        Codec.write_uvarint sink !misses;
        Codec.write_uvarint sink !sets;
        Codec.write_uvarint sink !evictions);
    read_checkpoint =
      (fun src ->
        Hashtbl.reset table;
        Queue.clear lru;
        let entries =
          Codec.read_list src (fun s ->
              let k = Codec.read_string s in
              let v = Codec.read_string s in
              (k, v))
        in
        List.iter (fun (k, v) -> Hashtbl.replace table k v) entries;
        Codec.read_list src Codec.read_string
        |> List.iter (fun k -> Queue.push k lru);
        hits := Codec.read_uvarint src;
        misses := Codec.read_uvarint src;
        sets := Codec.read_uvarint src;
        evictions := Codec.read_uvarint src);
    digest =
      (fun () ->
        Printf.sprintf "%d/%d/%d/%d/%s" !hits !misses !sets !evictions
          (string_of_int (Hashtbl.hash (bindings ()))));
  }
