let words s =
  String.split_on_char ' ' s |> List.filter (fun w -> w <> "")

let sorted_bindings tables =
  Array.to_list tables
  |> List.concat_map (fun tbl -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  |> List.sort compare

let digest_of_tables tables =
  string_of_int (Hashtbl.hash (sorted_bindings tables))

let write_tables sink tables =
  Codec.write_list sink
    (fun b (k, v) ->
      Codec.write_string b k;
      Codec.write_string b v)
    (sorted_bindings tables)

let read_tables src ~shard_of tables =
  Array.iter Hashtbl.reset tables;
  let bindings =
    Codec.read_list src (fun s ->
        let k = Codec.read_string s in
        let v = Codec.read_string s in
        (k, v))
  in
  List.iter (fun (k, v) -> Hashtbl.replace tables.(shard_of k) k v) bindings
