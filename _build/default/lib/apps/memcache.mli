(** Memcached-style object cache (paper §6.3, Fig. 7f): "contains three
    frequently used global locks (slabs lock, cache lock, and status
    lock) ... the regions guarded by the locks are large, therefore
    introducing heavy lock contention.  The application does not scale
    well even in native mode.  Rex clearly does not work well in this
    case."  This port reproduces that pathology faithfully: most of each
    request's work happens under the single cache lock.

    Requests: ["SET <key> <value>"], ["GET <key>"], ["DEL <key>"].
    Synchronization: [Lock], [Cond] (Table 1). *)

val factory :
  ?capacity:int -> ?op_cost:float -> unit -> Rex_core.App.factory
(** Defaults: 100 000 items, 8 µs per op (≈6 µs of it under the cache
    lock). *)
