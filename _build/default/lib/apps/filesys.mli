(** Simple replicated file system (paper §6.3, Fig. 7e): synchronized
    random 16 KB reads/writes over 64 files of 128 MB, read:write = 1:4.
    Disk-bound: concurrency helps because the {!Sim_disk} overlaps seeks.

    Requests: ["READ <file> <off> <len>"], ["WRITE <file> <off> <len>"].
    Synchronization: [Lock] per file (Table 1). *)

val factory : ?n_files:int -> ?disk:Sim_disk.t -> unit -> Rex_core.App.factory
(** [disk] defaults to a fresh {!Sim_disk} per replica. *)
