module R = Rex_core

type slice = {
  lock : Rexsync.Lock.t;
  memtable : (string, string) Hashtbl.t;
  disktable : (string, string) Hashtbl.t;
      (* a deleted key is a binding to "" (tombstone) in the memtable *)
}

let factory ?(slices = 256) ?(memtable_limit = 64) ?(stall_limit = 16384)
    ?(compaction_interval = 2e-3) ?(op_cost = 6e-6) () : R.App.factory =
 fun api ->
  let meta_lock = R.Api.lock api "ldb.meta" in
  let unstalled = R.Api.cond api "ldb.unstall" in
  let slice_arr =
    Array.init slices (fun i ->
        {
          lock = R.Api.lock api (Printf.sprintf "ldb.slice%d" i);
          memtable = Hashtbl.create 16;
          disktable = Hashtbl.create 64;
        })
  in
  let resident = ref 0 in
  (* Per-slice resident counts, guarded by [meta_lock]: compaction picks
     its victims from these, never by peeking at unlocked memtables. *)
  let counts = Array.make slices 0 in
  let sequence = ref 0 in
  (* Fig. 5: the comparator singleton is initialized by whichever thread
     gets there first on each replica — explicitly excluded from
     record/replay with NATIVE_EXEC. *)
  let comparator = ref None in
  let ensure_comparator () =
    R.Api.native api (fun () ->
        if !comparator = None then comparator := Some "leveldb.BytewiseComparator")
  in
  let slice_of key = Hashtbl.hash key mod slices in
  (* Background compaction: drain dirty slices' memtables into their disk
     tables, then wake stalled writers. *)
  let compact () =
    let work_list =
      Rexsync.Lock.with_lock meta_lock (fun () ->
          (* Full memtables always; under stall pressure, everything. *)
          let pressured = !resident >= stall_limit / 2 in
          let picked = ref [] in
          Array.iteri
            (fun i c ->
              if c >= memtable_limit || (pressured && c > 0) then
                picked := i :: !picked)
            counts;
          !picked)
    in
    List.iter
      (fun i ->
        let s = slice_arr.(i) in
        Rexsync.Lock.with_lock s.lock (fun () ->
            let n = Hashtbl.length s.memtable in
            if n > 0 then begin
              (* Sort + write cost, modeled per entry. *)
              R.Api.work api (float_of_int n *. 1e-6);
              Hashtbl.iter
                (fun k v ->
                  if v = "" then Hashtbl.remove s.disktable k
                  else Hashtbl.replace s.disktable k v)
                s.memtable;
              Hashtbl.reset s.memtable;
              Rexsync.Lock.with_lock meta_lock (fun () ->
                  resident := !resident - n;
                  counts.(i) <- counts.(i) - n;
                  Rexsync.Condvar.broadcast unstalled)
            end))
      work_list
  in
  R.Api.add_timer api ~name:"compaction" ~interval:compaction_interval compact;
  let put key value =
    ensure_comparator ();
    R.Api.work api op_cost;
    (* Write stall: wait for compaction when too much is resident. *)
    Rexsync.Lock.with_lock meta_lock (fun () ->
        while !resident >= stall_limit do
          Rexsync.Condvar.wait unstalled meta_lock
        done;
        incr sequence);
    let i = slice_of key in
    let s = slice_arr.(i) in
    Rexsync.Lock.with_lock s.lock (fun () ->
        let added = not (Hashtbl.mem s.memtable key) in
        Hashtbl.replace s.memtable key value;
        if added then
          Rexsync.Lock.with_lock meta_lock (fun () ->
              incr resident;
              counts.(i) <- counts.(i) + 1));
    "OK"
  in
  let get key =
    ensure_comparator ();
    R.Api.work api op_cost;
    let s = slice_arr.(slice_of key) in
    Rexsync.Lock.with_lock s.lock (fun () ->
        match Hashtbl.find_opt s.memtable key with
        | Some "" -> "NOTFOUND"
        | Some v -> v
        | None -> (
          match Hashtbl.find_opt s.disktable key with
          | Some v -> v
          | None -> "NOTFOUND"))
  in
  let execute ~request =
    match Util.words request with
    | [ "SET"; key; value ] -> put key value
    | [ "GET"; key ] -> get key
    | [ "DEL"; key ] -> put key ""
    | "MGET" :: keys -> String.concat "," (List.map get keys)
    | [ "RMW"; key; value ] ->
      let old = get key in
      ignore (put key value);
      if old = "NOTFOUND" then "RMW:new" else "RMW:ok"
    | _ -> "ERR:bad-request"
  in
  let query ~request =
    match Util.words request with
    | [ "GET"; key ] ->
      let s = slice_arr.(slice_of key) in
      Rexsync.Lock.with_lock s.lock (fun () ->
          match Hashtbl.find_opt s.memtable key with
          | Some "" -> "NOTFOUND"
          | Some v -> v
          | None -> (
            match Hashtbl.find_opt s.disktable key with
            | Some v -> v
            | None -> "NOTFOUND"))
    | _ -> "ERR:bad-query"
  in
  (* Logical contents: disk table overlaid with the memtable. *)
  let bindings () =
    Array.to_list slice_arr
    |> List.concat_map (fun s ->
           let merged = Hashtbl.copy s.disktable in
           Hashtbl.iter
             (fun k v ->
               if v = "" then Hashtbl.remove merged k
               else Hashtbl.replace merged k v)
             s.memtable;
           Hashtbl.fold (fun k v acc -> (k, v) :: acc) merged [])
    |> List.sort compare
  in
  (* Checkpoints must capture the PHYSICAL state — which entries sit in
     which memtable, the resident counters — not just the logical
     contents: replay after the checkpoint cut re-executes compaction
     decisions that depend on it (the paper's §5 warning that loading a
     checkpoint must not "reset the context"). *)
  let write_table sink tbl =
    Codec.write_list sink
      (fun b (k, v) ->
        Codec.write_string b k;
        Codec.write_string b v)
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare)
  in
  let read_table src tbl =
    Hashtbl.reset tbl;
    Codec.read_list src (fun s ->
        let k = Codec.read_string s in
        let v = Codec.read_string s in
        (k, v))
    |> List.iter (fun (k, v) -> Hashtbl.replace tbl k v)
  in
  {
    R.App.name = "leveldb";
    execute;
    query;
    write_checkpoint =
      (fun sink ->
        Codec.write_uvarint sink !resident;
        Codec.write_uvarint sink !sequence;
        Codec.write_array sink Codec.write_uvarint counts;
        Array.iter
          (fun s ->
            write_table sink s.memtable;
            write_table sink s.disktable)
          slice_arr);
    read_checkpoint =
      (fun src ->
        resident := Codec.read_uvarint src;
        sequence := Codec.read_uvarint src;
        let c = Codec.read_array src Codec.read_uvarint in
        Array.blit c 0 counts 0 (min (Array.length c) slices);
        Array.iter
          (fun s ->
            read_table src s.memtable;
            read_table src s.disktable)
          slice_arr);
    digest = (fun () -> string_of_int (Hashtbl.hash (bindings ())));
  }
