module R = Rex_core

let factory ?(slices = 1024) ?(op_cost = 7e-6) ?(meta_cost = 1.5e-6) () :
    R.App.factory =
 fun api ->
  let meta_lock = R.Api.lock api "kc.meta" in
  let flush_cond = R.Api.cond api "kc.flush" in
  let slice_locks =
    Array.init slices (fun i -> R.Api.rwlock api (Printf.sprintf "kc.slice%d" i))
  in
  let tables : (string, string) Hashtbl.t array =
    Array.init slices (fun _ -> Hashtbl.create 16)
  in
  let record_count = ref 0 in
  let dirty_since_flush = ref 0 in
  let slice_of key = Hashtbl.hash key mod slices in
  (* A background "auto-sync" task: write back accumulated updates and
     release any stalled writers. *)
  let sync_threshold = 2048 in
  let hard_limit = 8 * sync_threshold in
  R.Api.add_timer api ~name:"autosync" ~interval:2e-3 (fun () ->
      Rexsync.Lock.with_lock meta_lock (fun () ->
          if !dirty_since_flush >= sync_threshold then begin
            (* write-back cost proportional to dirtiness *)
            R.Api.work api (float_of_int !dirty_since_flush *. 2e-8);
            dirty_since_flush := 0;
            Rexsync.Condvar.broadcast flush_cond
          end));
  let execute ~request =
    match Util.words request with
    | [ "SET"; key; value ] ->
      let i = slice_of key in
      R.Api.work api (op_cost /. 2.);
      Rexsync.Rwlock.with_wr slice_locks.(i) (fun () ->
          R.Api.work api (op_cost /. 2.);
          let fresh = not (Hashtbl.mem tables.(i) key) in
          Hashtbl.replace tables.(i) key value;
          Rexsync.Lock.with_lock meta_lock (fun () ->
              R.Api.work api meta_cost;
              if fresh then incr record_count;
              (* stall writers when auto-sync falls too far behind *)
              while !dirty_since_flush >= hard_limit do
                Rexsync.Condvar.wait flush_cond meta_lock
              done;
              incr dirty_since_flush));
      "OK"
    | [ "DEL"; key ] ->
      let i = slice_of key in
      R.Api.work api (op_cost /. 2.);
      Rexsync.Rwlock.with_wr slice_locks.(i) (fun () ->
          R.Api.work api (op_cost /. 2.);
          let existed = Hashtbl.mem tables.(i) key in
          Hashtbl.remove tables.(i) key;
          Rexsync.Lock.with_lock meta_lock (fun () ->
              R.Api.work api meta_cost;
              if existed then decr record_count;
              incr dirty_since_flush));
      "OK"
    | [ "GET"; key ] ->
      let i = slice_of key in
      R.Api.work api (op_cost /. 2.);
      Rexsync.Rwlock.with_rd slice_locks.(i) (fun () ->
          R.Api.work api (op_cost /. 2.);
          Option.value (Hashtbl.find_opt tables.(i) key) ~default:"NOTFOUND")
    | [ "COUNT" ] -> string_of_int !record_count
    | "MGET" :: keys ->
      (* short scan: sequential point reads (YCSB-E rendering) *)
      let parts =
        List.map
          (fun key ->
            let i = slice_of key in
            R.Api.work api (op_cost /. 4.);
            Rexsync.Rwlock.with_rd slice_locks.(i) (fun () ->
                Option.value (Hashtbl.find_opt tables.(i) key)
                  ~default:"NOTFOUND"))
          keys
      in
      String.concat "," parts
    | [ "RMW"; key; value ] ->
      (* read-modify-write under one writer section (YCSB-F) *)
      let i = slice_of key in
      R.Api.work api (op_cost /. 2.);
      Rexsync.Rwlock.with_wr slice_locks.(i) (fun () ->
          R.Api.work api (op_cost /. 2.);
          let old = Option.value (Hashtbl.find_opt tables.(i) key) ~default:"" in
          let fresh = old = "" in
          Hashtbl.replace tables.(i) key value;
          Rexsync.Lock.with_lock meta_lock (fun () ->
              R.Api.work api meta_cost;
              if fresh then incr record_count;
              while !dirty_since_flush >= hard_limit do
                Rexsync.Condvar.wait flush_cond meta_lock
              done;
              incr dirty_since_flush);
          if fresh then "RMW:new" else "RMW:ok")
    | _ -> "ERR:bad-request"
  in
  let query ~request =
    match Util.words request with
    | [ "GET"; key ] ->
      let i = slice_of key in
      R.Api.work api (op_cost /. 2.);
      Rexsync.Rwlock.with_rd slice_locks.(i) (fun () ->
          R.Api.work api (op_cost /. 2.);
          Option.value (Hashtbl.find_opt tables.(i) key) ~default:"NOTFOUND")
    | [ "COUNT" ] -> string_of_int !record_count
    | _ -> "ERR:bad-query"
  in
  {
    R.App.name = "kyoto";
    execute;
    query;
    write_checkpoint =
      (fun sink ->
        Codec.write_uvarint sink !record_count;
        (* physical context: replayed auto-sync decisions depend on it *)
        Codec.write_uvarint sink !dirty_since_flush;
        Util.write_tables sink tables);
    read_checkpoint =
      (fun src ->
        record_count := Codec.read_uvarint src;
        dirty_since_flush := Codec.read_uvarint src;
        Util.read_tables src ~shard_of:slice_of tables);
    digest =
      (fun () ->
        Printf.sprintf "%d/%s" !record_count (Util.digest_of_tables tables));
  }
