(** Paxos ballot numbers: a round counter tie-broken by replica id, so two
    campaigners never share a ballot. *)

type t = { round : int; replica : int }

val zero : t
val compare : t -> t -> int
val next : t -> me:int -> t
(** Smallest ballot owned by [me] strictly greater than the argument. *)

val pp : t Fmt.t
val write : Codec.sink -> t -> unit
val read : Codec.source -> t
