lib/paxos/ballot.ml: Codec Fmt Int
