lib/paxos/msg.ml: Ballot Codec Fmt Fun List Printf
