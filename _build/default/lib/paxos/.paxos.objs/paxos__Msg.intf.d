lib/paxos/msg.mli: Ballot Fmt
