lib/paxos/store.mli: Ballot
