lib/paxos/replica.mli: Ballot Sim Store
