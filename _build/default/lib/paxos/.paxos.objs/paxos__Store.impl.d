lib/paxos/store.ml: Ballot Hashtbl List Printf
