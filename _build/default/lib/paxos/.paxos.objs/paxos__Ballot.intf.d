lib/paxos/ballot.mli: Codec Fmt
