lib/paxos/replica.ml: Ballot Codec Engine Hashtbl List Msg Net Rng Sim Store
