type t = { round : int; replica : int }

let zero = { round = 0; replica = -1 }

let compare a b =
  match Int.compare a.round b.round with
  | 0 -> Int.compare a.replica b.replica
  | c -> c

let next b ~me = { round = b.round + 1; replica = me }
let pp ppf b = Fmt.pf ppf "%d.%d" b.round b.replica

let write sink b =
  Codec.write_uvarint sink b.round;
  Codec.write_varint sink b.replica

let read s =
  let round = Codec.read_uvarint s in
  let replica = Codec.read_varint s in
  { round; replica }
