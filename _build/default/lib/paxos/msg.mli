(** Paxos wire messages. *)

type t =
  | Prepare of { ballot : Ballot.t }  (** phase 1a, covers all open instances *)
  | Promise of {
      ballot : Ballot.t;
      accepted : (int * Ballot.t * string) list;
          (** accepted-but-uncommitted proposals above the committed prefix *)
      committed_upto : int;
    }  (** phase 1b *)
  | Nack of { ballot : Ballot.t }  (** a higher ballot exists *)
  | Accept of {
      ballot : Ballot.t;
      instance : int;
      value : string;
      prior : (int * string) list;
          (** piggybacked not-yet-committed proposals from earlier
              instances (Rex §3.1): an acceptor that missed them accepts
              them first, preserving the no-holes invariant *)
    }  (** 2a *)
  | Accepted of { ballot : Ballot.t; instance : int }  (** 2b *)
  | Commit of { instance : int; value : string }
  | Heartbeat of { ballot : Ballot.t; committed_upto : int }
  | Learn of { from_instance : int }  (** catch-up request *)
  | Learn_reply of { entries : (int * string) list }

val encode : t -> string
val decode : string -> t
val pp : t Fmt.t
