(* rex-demo: a command-line playground for the Rex framework.

   Pick an application, a workload size, worker threads, a seed, and
   optional fault injection; the tool runs a replicated cluster in the
   simulator and reports throughput, convergence and trace statistics.
   With --shards N > 1 it runs N independent replica groups behind a
   consistent-hash router (lib/shard) instead of a single group.

     dune exec bin/rex_demo.exe -- --app leveldb -n 20000 --threads 8 \
       --kill-primary --checkpoints
     dune exec bin/rex_demo.exe -- --app memcache --shards 4 -n 20000 *)

open Sim
module R = Rex_core
module Router = Shard.Router

let apps :
    (string * (unit -> R.App.factory) * (unit -> Workload.Mix.gen)) list =
  [
    ( "thumbnail",
      (fun () -> Apps.Thumbnail.factory ()),
      fun () -> Workload.Mix.thumbnail ~n_images:100_000 );
    ( "lockserver",
      (fun () -> Apps.Lock_server.factory ()),
      fun () -> Workload.Mix.lock_server ~n_files:10_000 );
    ( "leveldb",
      (fun () -> Apps.Leveldb.factory ()),
      fun () -> Workload.Mix.kv ~n_keys:10_000 ~read_ratio:0.5 () );
    ( "kyoto",
      (fun () -> Apps.Kyoto.factory ()),
      fun () -> Workload.Mix.kv ~n_keys:10_000 ~read_ratio:0.5 () );
    ( "filesys",
      (fun () -> Apps.Filesys.factory ()),
      fun () -> Workload.Mix.filesystem ~n_files:64 );
    ( "memcache",
      (fun () -> Apps.Memcache.factory ()),
      fun () -> Workload.Mix.kv ~n_keys:10_000 ~read_ratio:0.5 () );
  ]

let export eng metrics_out trace_out =
  (match metrics_out with
  | Some path ->
    Obs.Export.to_file ~path
      (Obs.Export.metrics_json (Obs.registry (Engine.obs eng)));
    Printf.printf "metrics written to %s\n" path
  | None -> ());
  match trace_out with
  | Some path ->
    Obs.Export.to_file ~path
      (Obs.Export.chrome_trace (Obs.spans (Engine.obs eng)));
    Printf.printf "trace written to %s\n" path
  | None -> ()

(* --- Single machine on real domains (--backend domains) ---

   The domains backend has no simulated network, so there is no cluster:
   this mode runs ONE machine's execution stage — the chosen app behind
   the record-mode runtime, [threads] worker fibers on a pool of real
   OCaml 5 domains — and reports wall-clock throughput, the recorded
   trace volume and the final digest.  It is the live demo of what
   `bench par` measures. *)

let run_on_domains ~factory ~gen ~n ~threads ~seed ~metrics_out =
  let d = Par.Domains.create ~seed () in
  Printf.printf "domains backend up: %d worker domain(s), %d fibers\n%!"
    (Par.Domains.domains d) threads;
  let rt = Rexsync.Runtime.create (Par.Domains.backend d) ~node:0 ~slots:threads in
  let api = R.Api.make rt in
  let app : R.App.t = factory () api in
  let timers = R.Api.seal api in
  let remaining = Atomic.make threads in
  (* Timer fibers run unbound (native path) and exit once the workers
     are done, so [join] terminates. *)
  List.iter
    (fun (spec : R.Api.timer_spec) ->
      Par.Domains.spawn d ~node:0 ~name:spec.R.Api.t_name (fun () ->
          while Atomic.get remaining > 0 do
            Engine.sleep spec.R.Api.t_interval;
            if Atomic.get remaining > 0 then spec.R.Api.t_callback ()
          done))
    timers;
  let per = n / threads in
  let t0 = Par.Domains.now d in
  for w = 0 to threads - 1 do
    Par.Domains.spawn d ~node:0
      ~name:(Printf.sprintf "worker%d" w)
      (fun () ->
        Rexsync.Runtime.bind_slot rt w;
        let g = gen () in
        let rng = Rng.create ((seed * 31) + w) in
        for _ = 1 to per do
          ignore (app.R.App.execute ~request:(g rng))
        done;
        Rexsync.Runtime.unbind_slot rt;
        Atomic.decr remaining)
  done;
  Par.Domains.join d;
  let dt = Par.Domains.now d -. t0 in
  let st = Rexsync.Runtime.stats rt in
  let total = per * threads in
  Printf.printf
    "\n%d requests executed in %.3f wall s => %.0f req/s\n\
     recorded %d events, %d edges (%d reduced); digest %s\n"
    total dt
    (float_of_int total /. dt)
    st.Rexsync.Runtime.events_recorded st.Rexsync.Runtime.edges_recorded
    st.Rexsync.Runtime.edges_reduced
    (app.R.App.digest ());
  (match metrics_out with
  | Some path ->
    Obs.Export.to_file ~path
      (Obs.Export.metrics_json (Obs.registry (Par.Domains.obs d)));
    Printf.printf "metrics written to %s\n" path
  | None -> ());
  Par.Domains.shutdown d

(* --- Single replica group (the original demo) --- *)

let run_single ~factory ~gen ~n ~threads ~seed ~kill_primary ~checkpoints
    ~metrics_out ~trace_out =
  let cfg =
    R.Cluster.config ~workers:threads
      ~checkpoint_interval:(if checkpoints then Some 0.25 else None)
      ()
  in
  let cluster =
    R.Cluster.launch ~seed
      ~before_start:(fun c ->
        if trace_out <> None then
          Obs.enable_tracing (Engine.obs (R.Cluster.engine c)) true)
      cfg (factory ())
  in
  let eng = R.Cluster.engine cluster in
  let primary = R.Cluster.await_primary cluster in
  Printf.printf "cluster up; primary = replica %d\n%!" (R.Server.node primary);
  let g = gen () in
  let rng = Rng.create (seed * 31) in
  let completed = ref 0 and dropped = ref 0 and launched = ref 0 in
  let t0 = Engine.clock eng in
  let target = ref primary in
  let rec submit_one () =
    if !launched < n then begin
      incr launched;
      R.Server.submit !target (g rng) (fun r ->
          (match r with Some _ -> incr completed | None -> incr dropped);
          submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         for _ = 1 to 16 * threads do
           submit_one ()
         done));
  (* Optional fault injection halfway through. *)
  if kill_primary then
    ignore
      (Engine.spawn eng ~node:3 ~name:"chaos" (fun () ->
           while !completed < n / 2 do
             Engine.sleep 0.01
           done;
           let victim = R.Server.node primary in
           Printf.printf "[%.3fs] killing primary (replica %d)\n%!"
             (Engine.now () -. t0) victim;
           R.Cluster.crash cluster victim;
           (* resume driving on the new primary *)
           let rec wait_new () =
             match R.Cluster.primary cluster with
             | Some p when R.Server.node p <> victim ->
               Printf.printf "[%.3fs] new primary: replica %d\n%!"
                 (Engine.now () -. t0) (R.Server.node p);
               target := p;
               let remaining = n - !completed - !dropped in
               launched := n - remaining;
               for _ = 1 to min remaining (16 * threads) do
                 submit_one ()
               done
             | _ ->
               Engine.sleep 0.01;
               wait_new ()
           in
           wait_new ();
           Engine.sleep 1.0;
           Printf.printf "[%.3fs] restarting replica %d\n%!"
             (Engine.now () -. t0) victim;
           R.Cluster.restart cluster victim));
  let deadline = Engine.clock eng +. 600. in
  let rec pump () =
    Engine.run ~until:(Engine.clock eng +. 0.25) eng;
    if !completed + !dropped < n && Engine.clock eng < deadline then pump ()
  in
  pump ();
  R.Cluster.run_for cluster 3.0;
  let dt = Engine.clock eng -. t0 -. 3.0 in
  Printf.printf "\n%d/%d requests committed (%d dropped) in %.3f virtual s \
                 => %.0f req/s\n"
    !completed n !dropped dt
    (float_of_int !completed /. dt);
  Array.iter
    (fun s ->
      if Engine.node_alive eng (R.Server.node s) then begin
        let st = R.Server.runtime_stats s in
        Printf.printf
          "replica %d: digest %-12s role %-9s events rec/replayed %d/%d \
           waited %d%s\n"
          (R.Server.node s) (R.Server.app_digest s)
          (if R.Server.is_primary s then "primary" else "secondary")
          st.Rexsync.Runtime.events_recorded
          st.Rexsync.Runtime.events_replayed
          st.Rexsync.Runtime.waited_events
          (match R.Server.divergence s with
          | Some m -> "  DIVERGED: " ^ m
          | None -> "")
      end)
    (R.Cluster.servers cluster);
  export eng metrics_out trace_out;
  let digests =
    Array.to_list (R.Cluster.servers cluster)
    |> List.filter (fun s -> Engine.node_alive eng (R.Server.node s))
    |> List.map R.Server.app_digest
  in
  match digests with
  | d :: rest when List.for_all (( = ) d) rest ->
    print_endline "replicas CONVERGED"
  | _ ->
    print_endline "replicas DID NOT converge";
    exit 1

(* --- Sharded fleet (--shards N > 1) --- *)

let run_sharded ~shards ~factory ~gen ~n ~threads ~seed ~kill_primary
    ~checkpoints ~metrics_out ~trace_out =
  let config ~group:_ ~replicas =
    R.Config.make ~workers:threads ~propose_interval:2e-4
      ~checkpoint_interval:(if checkpoints then Some 0.25 else None)
      ~replicas ()
  in
  let fleet =
    Shard.Fleet.create ~seed ~groups:shards ~config (fun ~map ~group ->
        Shard.Partition.factory ~map ~group (factory ()))
  in
  let eng = Shard.Fleet.engine fleet in
  if trace_out <> None then Obs.enable_tracing (Engine.obs eng) true;
  Shard.Fleet.start fleet;
  Shard.Fleet.await_primaries fleet;
  Printf.printf "fleet up: %d groups x %d replicas, router on node %d\n%!"
    shards 3 (Shard.Fleet.client_node fleet);
  let router = Shard.Fleet.router fleet in
  let g = gen () in
  let rng = Rng.create (seed * 31) in
  let completed = ref 0 and dropped = ref 0 and launched = ref 0 in
  let t0 = Engine.clock eng in
  let drivers = 16 * threads in
  for _ = 1 to drivers do
    ignore
      (Engine.spawn eng ~node:(Shard.Fleet.client_node fleet) ~name:"driver"
         (fun () ->
           while !launched < n do
             incr launched;
             let request = g rng in
             let key =
               Option.value
                 (Shard.Partition.default_key_of request)
                 ~default:request
             in
             match Router.call router ~key request with
             | Some _ -> incr completed
             | None -> incr dropped
           done))
  done;
  if kill_primary then
    ignore
      (Engine.spawn eng ~node:(Shard.Fleet.client_node fleet) ~name:"chaos"
         (fun () ->
           while !completed < n / 2 do
             Engine.sleep 0.01
           done;
           match Shard.Fleet.crash_primary fleet 0 with
           | None -> ()
           | Some victim ->
             Printf.printf "[%.3fs] killed group 0 primary (node %d)\n%!"
               (Engine.now () -. t0) victim;
             Engine.sleep 1.0;
             Printf.printf "[%.3fs] restarting node %d\n%!"
               (Engine.now () -. t0) victim;
             Shard.Fleet.restart fleet victim));
  let deadline = Engine.clock eng +. 600. in
  let rec pump () =
    Engine.run ~until:(Engine.clock eng +. 0.25) eng;
    if !completed + !dropped < n && Engine.clock eng < deadline then pump ()
  in
  pump ();
  Shard.Fleet.run_for fleet 3.0;
  let dt = Engine.clock eng -. t0 -. 3.0 in
  let st = Router.stats router in
  Printf.printf "\n%d/%d requests committed (%d dropped) in %.3f virtual s \
                 => %.0f req/s across %d shards\n"
    !completed n !dropped dt
    (float_of_int !completed /. dt)
    shards;
  Printf.printf
    "router: %d requests, %d hops, %d redirects, %d retries, %d failures, \
     imbalance %.2f\n"
    st.Router.requests st.Router.hops st.Router.redirects st.Router.retries
    st.Router.failures (Router.imbalance router);
  for grp = 0 to shards - 1 do
    let primary_node =
      match Shard.Fleet.primary fleet grp with
      | Some s -> string_of_int (R.Server.node s)
      | None -> "-"
    in
    Printf.printf "shard %d: %d routed ok, %d replies, primary node %s\n" grp
      (Router.routed_ok router ~group:grp)
      (Shard.Fleet.replies fleet grp)
      primary_node
  done;
  export eng metrics_out trace_out;
  Shard.Fleet.check_no_divergence fleet;
  if Shard.Fleet.converged fleet then print_endline "all shards CONVERGED"
  else begin
    print_endline "a shard DID NOT converge";
    exit 1
  end

let run app n threads seed shards backend kill_primary checkpoints metrics_out
    trace_out =
  match List.find_opt (fun (k, _, _) -> k = app) apps with
  | None ->
    (* unreachable: --app is validated by Arg.enum at parse time *)
    Printf.eprintf "unknown app %S; choose from: %s\n" app
      (String.concat ", " (List.map (fun (k, _, _) -> k) apps));
    exit 1
  | Some (_, factory, gen) ->
    if backend = `Domains then begin
      if shards > 1 || kill_primary || checkpoints || trace_out <> None then
        prerr_endline
          "note: --shards/--kill-primary/--checkpoints/--trace-out need the \
           simulated cluster and are ignored with --backend domains";
      run_on_domains ~factory ~gen ~n ~threads ~seed ~metrics_out
    end
    else if shards <= 1 then
      run_single ~factory ~gen ~n ~threads ~seed ~kill_primary ~checkpoints
        ~metrics_out ~trace_out
    else
      run_sharded ~shards ~factory ~gen ~n ~threads ~seed ~kill_primary
        ~checkpoints ~metrics_out ~trace_out

open Cmdliner

(* Validating at parse time makes an unknown app a usage error: rex-demo
   exits non-zero and prints the choices instead of starting a cluster. *)
let app_conv = Arg.enum (List.map (fun (k, _, _) -> (k, k)) apps)

let app_arg =
  Arg.(value & opt app_conv "lockserver" & info [ "a"; "app" ] ~doc:"Application.")

let n_arg = Arg.(value & opt int 10_000 & info [ "n" ] ~doc:"Request count.")
let threads_arg = Arg.(value & opt int 8 & info [ "threads" ] ~doc:"Workers.")
let seed_arg = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Simulation seed.")

(* Same parse-time strictness for the shard count. *)
let shards_conv =
  let parse s =
    match int_of_string_opt s with
    | Some v when v >= 1 && v <= 64 -> Ok v
    | Some _ | None ->
      Error (`Msg (Printf.sprintf "shard count %S not in 1..64" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let shards_arg =
  Arg.(
    value & opt shards_conv 1
    & info [ "shards" ]
        ~doc:"Replica groups; > 1 runs a consistent-hash-routed fleet.")

(* Parse-time validated like --app: an unknown backend is a usage error. *)
let backend_conv = Arg.enum [ ("sim", `Sim); ("domains", `Domains) ]

let backend_arg =
  Arg.(
    value & opt backend_conv `Sim
    & info [ "backend" ]
        ~doc:
          "Execution backend: $(b,sim) runs the replicated cluster in the \
           deterministic simulator; $(b,domains) runs one machine's \
           execution stage on real OCaml 5 domains (wall-clock, no \
           replication).")

let kill_arg =
  Arg.(value & flag & info [ "kill-primary" ] ~doc:"Crash the primary mid-run.")

let ckpt_arg =
  Arg.(value & flag & info [ "checkpoints" ] ~doc:"Periodic checkpoints.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:"Write the metrics registry to $(docv) as JSON.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:"Collect tracing spans and write Chrome trace_event JSON to \
              $(docv).")

let () =
  let term =
    Term.(
      const run $ app_arg $ n_arg $ threads_arg $ seed_arg $ shards_arg
      $ backend_arg $ kill_arg $ ckpt_arg $ metrics_arg $ trace_arg)
  in
  exit (Cmd.eval (Cmd.v (Cmd.info "rex-demo" ~doc:"Rex cluster playground") term))
