(* Tests for the exactly-once session layer and the shared frontend:
   wire-format round trips and decode-fuzz, session-table semantics
   (dedup, eviction, commutativity, codec), the [Session.wrap] app
   wrapper, and end-to-end fault-injection runs proving that each of the
   three stacks (Rex, SMR, Eve) executes every acknowledged logical
   request exactly once under message drops, partitions and a leader
   kill. *)

open Sim
module R = Rex_core

(* --- Wire formats --- *)

let envelope_gen =
  QCheck.Gen.(
    map
      (fun (client, seq, payload) ->
        { R.Session.Envelope.client; seq; payload })
      (triple (int_bound 1_000_000) (int_bound 1_000_000)
         (string_size (int_bound 64))))

let prop_envelope_roundtrip =
  QCheck.Test.make ~name:"session envelope roundtrip" ~count:300
    (QCheck.make envelope_gen) (fun e ->
      R.Session.Envelope.decode (R.Session.Envelope.encode e) = Some e)

let prop_envelope_fuzz =
  (* Truncations of a valid envelope must raise [Decode_error] (they
     still carry the magic byte), never succeed or crash; strings not
     starting with the magic byte must pass through as [None]. *)
  QCheck.Test.make ~name:"session envelope decode fuzz" ~count:300
    (QCheck.pair (QCheck.make envelope_gen)
       QCheck.(string_of_size (QCheck.Gen.int_bound 64)))
    (fun (e, garbage) ->
      let enc = R.Session.Envelope.encode e in
      let truncations_fail =
        List.for_all
          (fun len ->
            match R.Session.Envelope.decode (String.sub enc 0 len) with
            | exception Codec.Decode_error _ -> true
            | Some _ | None -> false)
          (List.init (String.length enc - 1) (fun i -> i + 1))
      in
      let raw_passthrough =
        if
          String.length garbage > 0
          && Char.code garbage.[0] = R.Session.Envelope.magic
        then
          match R.Session.Envelope.decode garbage with
          | Some _ | None -> true
          | exception Codec.Decode_error _ -> true
        else R.Session.Envelope.decode garbage = None
      in
      truncations_fail && raw_passthrough)

let reply_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> R.Client.Ok_reply s) (string_size (int_bound 64));
        map
          (fun h -> R.Client.Not_leader (if h < 0 then None else Some h))
          (map (fun n -> n - 1) (int_bound 64));
        return R.Client.Dropped;
      ])

let prop_reply_roundtrip =
  QCheck.Test.make ~name:"client reply roundtrip" ~count:300
    (QCheck.make reply_gen) (fun r ->
      R.Client.decode_reply (R.Client.encode_reply r) = r)

let prop_reply_fuzz =
  QCheck.Test.make ~name:"client reply decode fuzz" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun s ->
      match R.Client.decode_reply s with
      | _ -> true
      | exception Codec.Decode_error _ -> true)

(* --- Session table --- *)

let mk_table ?window () =
  R.Session.Table.create ?window (Obs.create ()) ~stack:"test" ~node:0 ()

let table_dedup_semantics () =
  let t = mk_table ~window:4 () in
  Alcotest.(check bool)
    "fresh seq is a miss" true
    (R.Session.Table.lookup t ~client:7 ~seq:0 = R.Session.Table.Miss);
  R.Session.Table.record t ~client:7 ~seq:0 ~reply:"a";
  Alcotest.(check bool)
    "recorded seq hits" true
    (R.Session.Table.lookup t ~client:7 ~seq:0 = R.Session.Table.Hit "a");
  Alcotest.(check bool)
    "other client unaffected" true
    (R.Session.Table.lookup t ~client:8 ~seq:0 = R.Session.Table.Miss);
  (* Fill past the window: seq 0 is evicted and classified stale. *)
  for s = 1 to 5 do
    R.Session.Table.record t ~client:7 ~seq:s ~reply:(string_of_int s)
  done;
  Alcotest.(check bool)
    "evicted seq is stale" true
    (R.Session.Table.lookup t ~client:7 ~seq:0 = R.Session.Table.Stale);
  Alcotest.(check int) "eviction counted" 2 (R.Session.Table.evictions t);
  (* A gap within the window is a miss (an out-of-order sibling), not
     stale: seq 9 unexecuted while 10..12 are. *)
  for s = 10 to 12 do
    R.Session.Table.record t ~client:9 ~seq:s ~reply:"x"
  done;
  Alcotest.(check bool)
    "in-window gap is a miss" true
    (R.Session.Table.lookup t ~client:9 ~seq:9 = R.Session.Table.Miss);
  Alcotest.(check int) "sessions gauge" 2 (R.Session.Table.sessions t)

let table_updates_commute () =
  (* Same records applied in different orders (concurrent replay) must
     converge to the same content. *)
  let records =
    [ (3, 0, "r0"); (3, 1, "r1"); (5, 0, "s0"); (3, 2, "r2"); (5, 1, "s1") ]
  in
  let apply order =
    let t = mk_table ~window:2 () in
    List.iter
      (fun (client, seq, reply) ->
        R.Session.Table.record t ~client ~seq ~reply)
      order;
    R.Session.Table.digest t
  in
  let d1 = apply records in
  let d2 = apply (List.rev records) in
  Alcotest.(check string) "digests converge" d1 d2

let table_codec_roundtrip =
  QCheck.Test.make ~name:"session table codec roundtrip" ~count:200
    QCheck.(
      list_of_size
        (QCheck.Gen.int_bound 40)
        (triple (int_bound 8) (int_bound 50) (string_of_size (QCheck.Gen.int_bound 16))))
    (fun records ->
      let t = mk_table ~window:8 () in
      List.iter
        (fun (client, seq, reply) ->
          R.Session.Table.record t ~client ~seq ~reply)
        records;
      let b = Codec.sink () in
      R.Session.Table.write b t;
      let t' = mk_table ~window:8 () in
      R.Session.Table.read (Codec.source (Codec.contents b)) t';
      R.Session.Table.digest t = R.Session.Table.digest t'
      && R.Session.Table.sessions t = R.Session.Table.sessions t')

let table_codec_fuzz =
  QCheck.Test.make ~name:"session table decode fuzz" ~count:300
    QCheck.(string_of_size (QCheck.Gen.int_bound 64))
    (fun s ->
      let t = mk_table () in
      match R.Session.Table.read (Codec.source s) t with
      | () -> true
      | exception Codec.Decode_error _ -> true)

(* --- The app wrapper --- *)

let counter_app () =
  let n = ref 0 in
  ( n,
    {
      R.App.name = "ctr";
      execute =
        (fun ~request:_ ->
          incr n;
          string_of_int !n);
      query = (fun ~request:_ -> string_of_int !n);
      write_checkpoint = (fun sink -> Codec.write_uvarint sink !n);
      read_checkpoint = (fun src -> n := Codec.read_uvarint src);
      digest = (fun () -> string_of_int !n);
    } )

let env client seq payload =
  R.Session.Envelope.encode { R.Session.Envelope.client; seq; payload }

let wrap_dedups_and_checkpoints () =
  let table = mk_table () in
  let n, app = counter_app () in
  let wrapped = R.Session.wrap ~table ~dedup_in_execute:true app in
  let r1 = wrapped.R.App.execute ~request:(env 1 0 "inc") in
  Alcotest.(check string) "first execution" "1" r1;
  let r2 = wrapped.R.App.execute ~request:(env 1 0 "inc") in
  Alcotest.(check string) "duplicate returns cached" "1" r2;
  Alcotest.(check int) "no second execution" 1 !n;
  Alcotest.(check int) "dup counted" 1 (R.Session.Table.dup_hits table);
  Alcotest.(check string)
    "raw requests pass through" "2"
    (wrapped.R.App.execute ~request:"raw-inc");
  (* The table rides inside the wrapped checkpoint. *)
  let b = Codec.sink () in
  wrapped.R.App.write_checkpoint b;
  let table' = mk_table () in
  let n', app' = counter_app () in
  let wrapped' = R.Session.wrap ~table:table' ~dedup_in_execute:true app' in
  wrapped'.R.App.read_checkpoint (Codec.source (Codec.contents b));
  Alcotest.(check int) "app state restored" 2 !n';
  Alcotest.(check bool)
    "session state restored" true
    (R.Session.Table.lookup table' ~client:1 ~seq:0 = R.Session.Table.Hit "1");
  Alcotest.(check string)
    "restored replica still dedups" "1"
    (wrapped'.R.App.execute ~request:(env 1 0 "inc"));
  Alcotest.(check string)
    "wrapped digests agree" (wrapped.R.App.digest ())
    (wrapped'.R.App.digest ())

(* --- Fault-injection: exactly-once on all three stacks ---

   Shared scaffolding: [concurrency] fibers share one client and drain
   [total] "INC k" requests with generous retries while the network
   drops messages, a partition comes and goes, and the leader is killed
   mid-run.  Exactly-once holds iff every request is acknowledged and
   the responses are a permutation of 1..total — a lost ack that was
   retried yields a duplicate value instead, and a double execution
   skips one. *)

let drive ~eng ~node ~cl ~total ~remaining =
  let results = ref [] in
  let pending = ref (List.init total (fun i -> i)) in
  for _ = 1 to 4 do
    ignore
      (Engine.spawn eng ~node ~name:"session-client" (fun () ->
           let rec loop () =
             match !pending with
             | [] -> ()
             | _ :: rest ->
               pending := rest;
               let resp = R.Client.call ~retries:100 cl "INC k" in
               results := resp :: !results;
               decr remaining;
               loop ()
           in
           loop ()))
  done;
  results

let check_exactly_once ~stack ~total ~remaining ~results ~dup_hits =
  Alcotest.(check int) (stack ^ ": all requests finished") 0 !remaining;
  let values =
    List.map
      (function
        | Some v -> int_of_string v
        | None -> Alcotest.fail (stack ^ ": a request exhausted its retries"))
      !results
    |> List.sort compare
  in
  Alcotest.(check (list int))
    (stack ^ ": responses are a permutation of 1..n (exactly-once)")
    (List.init total (fun i -> i + 1))
    values;
  Alcotest.(check bool)
    (stack ^ ": duplicates were intercepted (dup_hits > 0)")
    true (dup_hits () > 0)

let pump eng remaining ~deadline =
  let rec go () =
    Engine.run ~until:(Engine.clock eng +. 0.5) eng;
    if !remaining > 0 && Engine.clock eng < deadline then go ()
  in
  go ()

let fault_exactly_once_rex () =
  let total = 40 in
  let cluster =
    R.Cluster.create ~seed:2027
      (R.Config.make ~workers:4 ~replicas:[ 0; 1; 2 ] ())
      (fun api ->
        let n = ref 0 in
        let lock = R.Api.lock api "k" in
        {
          R.App.name = "ctr";
          execute =
            (fun ~request:_ ->
              R.Api.work api 2e-5;
              Rexsync.Lock.with_lock lock (fun () ->
                  incr n;
                  string_of_int !n));
          query = (fun ~request:_ -> string_of_int !n);
          write_checkpoint = (fun sink -> Codec.write_uvarint sink !n);
          read_checkpoint = (fun src -> n := Codec.read_uvarint src);
          digest = (fun () -> string_of_int !n);
        })
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let net = R.Cluster.net cluster in
  let cl = R.Cluster.client cluster in
  let cnode = R.Cluster.client_node cluster in
  Net.set_drop_probability net 0.08;
  let remaining = ref total in
  let results = drive ~eng ~node:cnode ~cl ~total ~remaining in
  Engine.run ~until:(Engine.clock eng +. 0.4) eng;
  (* A partition separates the primary from one secondary for a while. *)
  let p = R.Server.node primary in
  let other = List.find (fun n -> n <> p) (R.Cluster.replica_nodes cluster) in
  Net.partition net p other;
  Engine.run ~until:(Engine.clock eng +. 0.4) eng;
  Net.heal net p other;
  (* Kill the primary mid-stream: committed-but-unacked requests must be
     answered from the new primary's session table, not re-executed. *)
  R.Cluster.crash cluster p;
  pump eng remaining ~deadline:(Engine.clock eng +. 60.);
  Net.set_drop_probability net 0.;
  pump eng remaining ~deadline:(Engine.clock eng +. 30.);
  check_exactly_once ~stack:"rex" ~total ~remaining ~results ~dup_hits:(fun () ->
      List.fold_left
        (fun acc s ->
          acc + R.Session.Table.dup_hits (R.Server.session_table s))
        0
        (Array.to_list (R.Cluster.servers cluster)));
  R.Cluster.check_no_divergence cluster;
  (* The surviving replicas agree on the final count. *)
  let live =
    Array.to_list (R.Cluster.servers cluster)
    |> List.filter (fun s -> Engine.node_alive eng (R.Server.node s))
  in
  R.Cluster.run_for cluster 1.0;
  List.iter
    (fun s ->
      Alcotest.(check string)
        "rex: final counter" (string_of_int total)
        (R.Server.query s "GET"))
    live

let smr_counter_factory () : R.App.factory =
 fun _api ->
  let n = ref 0 in
  {
    R.App.name = "ctr";
    execute =
      (fun ~request:_ ->
        incr n;
        string_of_int !n);
    query = (fun ~request:_ -> string_of_int !n);
    write_checkpoint = (fun sink -> Codec.write_uvarint sink !n);
    read_checkpoint = (fun src -> n := Codec.read_uvarint src);
    digest = (fun () -> string_of_int !n);
  }

let fault_exactly_once_smr () =
  let total = 30 in
  let eng = Engine.create ~seed:2029 ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let config = R.Config.make ~workers:1 ~replicas:[ 0; 1; 2 ] () in
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let servers =
    Array.init 3 (fun i ->
        Smr.create net rpc config ~node:i ~paxos_store:stores.(i)
          (smr_counter_factory ()))
  in
  Array.iter Smr.start servers;
  Engine.run ~until:1.0 eng;
  let leader =
    match Array.find_opt Smr.is_primary servers with
    | Some s -> s
    | None -> Alcotest.fail "smr: no leader elected"
  in
  Net.set_drop_probability net 0.08;
  let cl = R.Client.create rpc ~me:3 ~replicas:[ 0; 1; 2 ] in
  let remaining = ref total in
  let results = drive ~eng ~node:3 ~cl ~total ~remaining in
  Engine.run ~until:(Engine.clock eng +. 0.5) eng;
  Engine.crash_node eng (Smr.node leader);
  pump eng remaining ~deadline:(Engine.clock eng +. 60.);
  Net.set_drop_probability net 0.;
  pump eng remaining ~deadline:(Engine.clock eng +. 30.);
  check_exactly_once ~stack:"smr" ~total ~remaining ~results ~dup_hits:(fun () ->
      Array.fold_left
        (fun acc s -> acc + R.Session.Table.dup_hits (Smr.session_table s))
        0 servers);
  Engine.run ~until:(Engine.clock eng +. 2.) eng;
  let live =
    Array.to_list servers
    |> List.filter (fun s -> Engine.node_alive eng (Smr.node s))
  in
  List.iter
    (fun s ->
      Alcotest.(check string)
        "smr: final counter" (string_of_int total) (Smr.query s "GET"))
    live

let fault_exactly_once_eve () =
  let total = 30 in
  let eng = Engine.create ~seed:2039 ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let cfg = Eve.default_config ~workers:4 ~replicas:[ 0; 1; 2 ] () in
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let servers =
    Array.init 3 (fun i ->
        Eve.create net rpc cfg ~node:i ~paxos_store:stores.(i)
          ~conflict_keys:(fun _ -> [ "k" ])
          (smr_counter_factory ()))
  in
  Array.iter Eve.start servers;
  Engine.run ~until:1.0 eng;
  let leader =
    match Array.find_opt Eve.is_primary servers with
    | Some s -> s
    | None -> Alcotest.fail "eve: no leader elected"
  in
  Net.set_drop_probability net 0.08;
  let cl = R.Client.create rpc ~me:3 ~replicas:[ 0; 1; 2 ] in
  let remaining = ref total in
  let results = drive ~eng ~node:3 ~cl ~total ~remaining in
  Engine.run ~until:(Engine.clock eng +. 0.5) eng;
  Engine.crash_node eng (Eve.node leader);
  pump eng remaining ~deadline:(Engine.clock eng +. 60.);
  Net.set_drop_probability net 0.;
  pump eng remaining ~deadline:(Engine.clock eng +. 30.);
  check_exactly_once ~stack:"eve" ~total ~remaining ~results ~dup_hits:(fun () ->
      Array.fold_left
        (fun acc s -> acc + R.Session.Table.dup_hits (Eve.session_table s))
        0 servers);
  Engine.run ~until:(Engine.clock eng +. 2.) eng;
  let live =
    Array.to_list servers
    |> List.filter (fun s -> Engine.node_alive eng (Eve.node s))
  in
  List.iter
    (fun s ->
      Alcotest.(check string)
        "eve: final counter" (string_of_int total) (Eve.query s "GET"))
    live

(* --- Deterministic duplicate: the same envelope sent twice --- *)

let crafted_duplicate_not_reexecuted () =
  let cluster =
    R.Cluster.create ~seed:53
      (R.Config.make ~workers:2 ~replicas:[ 0; 1; 2 ] ())
      (smr_counter_factory ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let rpc = R.Cluster.rpc cluster in
  let cnode = R.Cluster.client_node cluster in
  let p = R.Server.node primary in
  let first = ref None and second = ref None in
  ignore
    (Engine.spawn eng ~node:cnode (fun () ->
         let envelope = env 999_983 0 "inc" in
         first := Rpc.call rpc ~src:cnode ~dst:p ~port:R.Client.client_port ~timeout:5.0 envelope;
         second := Rpc.call rpc ~src:cnode ~dst:p ~port:R.Client.client_port ~timeout:5.0 envelope));
  R.Cluster.run_for cluster 15.0;
  let decode r =
    match r with
    | Some s -> (
      match R.Client.decode_reply s with
      | R.Client.Ok_reply v -> Some v
      | _ -> None)
    | None -> None
  in
  Alcotest.(check (option string)) "first executes" (Some "1") (decode !first);
  Alcotest.(check (option string))
    "retry answered from cache" (Some "1") (decode !second);
  Alcotest.(check string) "state unchanged" "1" (R.Server.query primary "GET");
  Alcotest.(check bool)
    "dup hit counted" true
    (R.Session.Table.dup_hits (R.Server.session_table primary) > 0)

(* --- Sessions survive checkpoint restore and failover --- *)

let sessions_survive_checkpoint_and_failover () =
  let cluster =
    R.Cluster.create ~seed:59
      (R.Config.make ~workers:2 ~checkpoint_interval:(Some 0.2)
         ~replicas:[ 0; 1; 2 ] ())
      (smr_counter_factory ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let rpc = R.Cluster.rpc cluster in
  let cnode = R.Cluster.client_node cluster in
  let p = R.Server.node primary in
  let envelope = env 77_777 0 "inc" in
  let first = ref None in
  ignore
    (Engine.spawn eng ~node:cnode (fun () ->
         first :=
           Rpc.call rpc ~src:cnode ~dst:p ~port:R.Client.client_port
             ~timeout:5.0 envelope));
  R.Cluster.run_for cluster 5.0;
  Alcotest.(check bool) "request acknowledged" true (!first <> None);
  (* Let checkpoints (which embed the session table) happen, then bounce
     a secondary: its rebuilt state comes from the checkpoint + trace. *)
  R.Cluster.run_for cluster 1.0;
  let sec =
    List.find (fun n -> n <> p) (R.Cluster.replica_nodes cluster)
  in
  R.Cluster.crash cluster sec;
  R.Cluster.run_for cluster 0.5;
  R.Cluster.restart cluster sec;
  R.Cluster.run_for cluster 3.0;
  let restored = R.Cluster.server cluster sec in
  Alcotest.(check bool)
    "restored secondary knows the session" true
    (R.Session.Table.lookup
       (R.Server.session_table restored)
       ~client:77_777 ~seq:0
    = R.Session.Table.Hit "1");
  (* Failover: the old primary dies; a pre-checkpoint retry sent to the
     new primary must be served from the restored table, unexecuted. *)
  R.Cluster.crash cluster p;
  let new_primary = R.Cluster.await_primary cluster in
  let retry = ref None in
  ignore
    (Engine.spawn eng ~node:cnode (fun () ->
         retry :=
           Rpc.call rpc ~src:cnode ~dst:(R.Server.node new_primary)
             ~port:R.Client.client_port ~timeout:5.0 envelope));
  R.Cluster.run_for cluster 10.0;
  (match !retry with
  | Some s -> (
    match R.Client.decode_reply s with
    | R.Client.Ok_reply v ->
      Alcotest.(check string) "retry served from session cache" "1" v
    | _ -> Alcotest.fail "retry not answered Ok")
  | None -> Alcotest.fail "retry timed out");
  Alcotest.(check string)
    "state not re-mutated" "1"
    (R.Server.query new_primary "GET")

let suite =
  [
    QCheck_alcotest.to_alcotest prop_envelope_roundtrip;
    QCheck_alcotest.to_alcotest prop_envelope_fuzz;
    QCheck_alcotest.to_alcotest prop_reply_roundtrip;
    QCheck_alcotest.to_alcotest prop_reply_fuzz;
    Alcotest.test_case "table dedup semantics" `Quick table_dedup_semantics;
    Alcotest.test_case "table updates commute" `Quick table_updates_commute;
    QCheck_alcotest.to_alcotest table_codec_roundtrip;
    QCheck_alcotest.to_alcotest table_codec_fuzz;
    Alcotest.test_case "wrap dedups + checkpoints" `Quick
      wrap_dedups_and_checkpoints;
    Alcotest.test_case "crafted duplicate not re-executed" `Quick
      crafted_duplicate_not_reexecuted;
    Alcotest.test_case "sessions survive ckpt + failover" `Quick
      sessions_survive_checkpoint_and_failover;
    Alcotest.test_case "exactly-once under faults: rex" `Quick
      fault_exactly_once_rex;
    Alcotest.test_case "exactly-once under faults: smr" `Quick
      fault_exactly_once_smr;
    Alcotest.test_case "exactly-once under faults: eve" `Quick
      fault_exactly_once_eve;
  ]
