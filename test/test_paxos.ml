(* Paxos tests: election, ordered commitment, failover with value
   recovery, catch-up, and agreement under message loss. *)

open Sim

type replica_ctx = {
  mutable rep : Paxos.Replica.t;
  store : Paxos.Store.t;
  mutable delivered : (int * string) list;  (* reverse order *)
  mutable became_leader : int;  (* count *)
}

type cluster = {
  eng : Engine.t;
  net : Net.t;
  nodes : int list;
  ctxs : replica_ctx array;
}

let mk_replica cluster_net cfg store ctx =
  let cbs =
    {
      Paxos.Replica.on_committed =
        (fun i v -> ctx.delivered <- (i, v) :: ctx.delivered);
      on_become_leader = (fun () -> ctx.became_leader <- ctx.became_leader + 1);
      on_new_leader = (fun _ -> ());
    }
  in
  let rep = Paxos.Replica.create cluster_net cfg store cbs in
  Paxos.Replica.start rep;
  rep

let mk_cluster ?(seed = 5) ?(n = 3) () =
  let eng = Engine.create ~seed ~cores_per_node:4 ~num_nodes:n () in
  let net = Net.create eng in
  let nodes = List.init n Fun.id in
  let ctxs =
    Array.init n (fun _ ->
        {
          rep = Obj.magic ();
          store = Paxos.Store.create ();
          delivered = [];
          became_leader = 0;
        })
  in
  let cluster = { eng; net; nodes; ctxs } in
  List.iter
    (fun i ->
      let cfg = Paxos.Replica.default_config ~me:i ~peers:nodes () in
      ctxs.(i).rep <- mk_replica net cfg ctxs.(i).store ctxs.(i))
    nodes;
  cluster

let restart_replica c i =
  Engine.restart_node c.eng i;
  let cfg = Paxos.Replica.default_config ~me:i ~peers:c.nodes () in
  c.ctxs.(i).rep <- mk_replica c.net cfg c.ctxs.(i).store c.ctxs.(i)

let current_leader c =
  let alive =
    List.filter (fun i -> Engine.node_alive c.eng i) c.nodes
  in
  List.find_opt (fun i -> Paxos.Replica.is_leader c.ctxs.(i).rep) alive

let run_for c seconds = Engine.run ~until:(Engine.clock c.eng +. seconds) c.eng

(* Drive proposals from a fiber on an alive node: find the leader, propose,
   wait for local commitment. *)
let propose_values c values =
  let driver_node =
    List.find (fun i -> Engine.node_alive c.eng i) c.nodes
  in
  let finished = ref false in
  ignore
    (Engine.spawn c.eng ~node:driver_node ~name:"driver" (fun () ->
         List.iter
           (fun v ->
             let rec try_propose () =
               match current_leader c with
               | Some l when Paxos.Replica.propose c.ctxs.(l).rep v -> l
               | _ ->
                 Engine.sleep 2e-3;
                 try_propose ()
             in
             let l = try_propose () in
             let target = Paxos.Replica.next_instance c.ctxs.(l).rep in
             ignore target;
             let rec wait_commit () =
               let committed =
                 List.exists
                   (fun i ->
                     Engine.node_alive c.eng i
                     && List.exists (fun (_, v') -> v' = v)
                          c.ctxs.(i).delivered)
                   c.nodes
               in
               if not committed then begin
                 Engine.sleep 2e-3;
                 wait_commit ()
               end
             in
             wait_commit ())
           values;
         finished := true));
  let rec pump limit =
    run_for c 1.0;
    if (not !finished) && limit > 0 then pump (limit - 1)
  in
  pump 60;
  Alcotest.(check bool) "driver finished" true !finished

let delivered_values ctx = List.rev_map snd ctx.delivered

let election_single_leader () =
  let c = mk_cluster () in
  run_for c 1.0;
  (match current_leader c with
  | Some _ -> ()
  | None -> Alcotest.fail "no leader elected");
  let leaders =
    List.filter (fun i -> Paxos.Replica.is_leader c.ctxs.(i).rep) c.nodes
  in
  Alcotest.(check int) "exactly one leader" 1 (List.length leaders)

let commit_in_order () =
  let c = mk_cluster () in
  run_for c 1.0;
  let values = List.init 10 (fun i -> Printf.sprintf "v%d" i) in
  propose_values c values;
  run_for c 1.0;
  List.iter
    (fun i ->
      Alcotest.(check (list string))
        (Printf.sprintf "replica %d delivered all, in order" i)
        values
        (delivered_values c.ctxs.(i));
      let instances = List.rev_map fst c.ctxs.(i).delivered in
      Alcotest.(check (list int))
        (Printf.sprintf "replica %d instances contiguous" i)
        (List.init 10 (fun k -> k + 1))
        instances)
    c.nodes

let failover_elects_new_leader () =
  let c = mk_cluster ~seed:7 () in
  run_for c 1.0;
  propose_values c [ "a"; "b" ];
  let l1 = Option.get (current_leader c) in
  Engine.crash_node c.eng l1;
  run_for c 2.0;
  (match current_leader c with
  | Some l2 -> Alcotest.(check bool) "different leader" true (l2 <> l1)
  | None -> Alcotest.fail "no new leader after crash");
  propose_values c [ "c" ];
  run_for c 1.0;
  (* Restart the old leader: it must catch up on everything. *)
  restart_replica c l1;
  run_for c 3.0;
  Alcotest.(check (list string))
    "restarted replica caught up" [ "a"; "b"; "c" ]
    (delivered_values c.ctxs.(l1))

let agreement_under_loss () =
  let c = mk_cluster ~seed:13 () in
  Net.set_drop_probability c.net 0.05;
  run_for c 2.0;
  let values = List.init 20 (fun i -> Printf.sprintf "x%d" i) in
  propose_values c values;
  Net.set_drop_probability c.net 0.;
  run_for c 3.0;
  (* All replicas must agree on a common prefix equal to the full list. *)
  List.iter
    (fun i ->
      let got = delivered_values c.ctxs.(i) in
      let expected_prefix = List.filteri (fun k _ -> k < List.length got) values in
      Alcotest.(check (list string))
        (Printf.sprintf "replica %d prefix agrees" i)
        expected_prefix got)
    c.nodes;
  (* And at least one replica (the leader's majority) has everything. *)
  let max_len =
    List.fold_left (fun m i -> max m (List.length (delivered_values c.ctxs.(i)))) 0 c.nodes
  in
  Alcotest.(check int) "all values committed somewhere" (List.length values) max_len

let partition_heals_catch_up () =
  let c = mk_cluster ~seed:21 () in
  run_for c 1.0;
  let l = Option.get (current_leader c) in
  let isolated = List.find (fun i -> i <> l) c.nodes in
  List.iter (fun i -> if i <> isolated then Net.partition c.net isolated i) c.nodes;
  propose_values c [ "p"; "q"; "r" ];
  Alcotest.(check (list string))
    "isolated replica saw nothing" []
    (delivered_values c.ctxs.(isolated));
  Net.heal_all c.net;
  run_for c 3.0;
  Alcotest.(check (list string))
    "isolated replica caught up after heal" [ "p"; "q"; "r" ]
    (delivered_values c.ctxs.(isolated))

let no_two_leaders_same_ballot () =
  (* Repeatedly crash and restart leaders; at no quiescent point may two
     alive replicas both believe they lead with the same ballot. *)
  let c = mk_cluster ~seed:31 () in
  run_for c 1.0;
  for round = 1 to 4 do
    (match current_leader c with
    | Some l ->
      Engine.crash_node c.eng l;
      run_for c 1.5;
      restart_replica c l;
      run_for c 1.5
    | None -> run_for c 1.0);
    let leaders =
      List.filter
        (fun i ->
          Engine.node_alive c.eng i && Paxos.Replica.is_leader c.ctxs.(i).rep)
        c.nodes
    in
    let ballots =
      List.map (fun i -> Paxos.Replica.current_ballot c.ctxs.(i).rep) leaders
    in
    let distinct = List.sort_uniq Paxos.Ballot.compare ballots in
    Alcotest.(check int)
      (Printf.sprintf "round %d: leader ballots distinct" round)
      (List.length ballots) (List.length distinct)
  done

let value_recovery_across_failover () =
  (* The chosen-value rule: if the old leader's value reached a majority of
     acceptors, the new leader must re-propose it, never replace it. *)
  let c = mk_cluster ~seed:43 () in
  run_for c 1.0;
  propose_values c [ "committed-1" ];
  let l = Option.get (current_leader c) in
  (* Propose but immediately isolate the leader so the accept may reach a
     subset of acceptors. *)
  Alcotest.(check bool) "proposed" true
    (Paxos.Replica.propose c.ctxs.(l).rep "maybe-chosen");
  List.iter (fun i -> if i <> l then Net.partition c.net l i) c.nodes;
  run_for c 0.5;
  Engine.crash_node c.eng l;
  Net.heal_all c.net;
  run_for c 3.0;
  propose_values c [ "after-failover" ];
  run_for c 1.0;
  (* Whatever happened, every replica's instance 2 must agree, and if
     "maybe-chosen" survived anywhere it is everywhere. *)
  let alive = List.filter (fun i -> Engine.node_alive c.eng i) c.nodes in
  let at_instance i inst =
    List.assoc_opt inst (List.map (fun (a, b) -> (a, b)) c.ctxs.(i).delivered)
  in
  let vals_i2 = List.filter_map (fun i -> at_instance i 2) alive in
  (match List.sort_uniq compare vals_i2 with
  | [] | [ _ ] -> ()
  | _ -> Alcotest.fail "replicas disagree at instance 2");
  Alcotest.(check bool) "progress resumed" true
    (List.exists
       (fun i -> List.mem "after-failover" (delivered_values c.ctxs.(i)))
       alive)

let ballot_ordering () =
  let open Paxos.Ballot in
  Alcotest.(check bool) "round dominates" true
    (compare { round = 2; replica = 0 } { round = 1; replica = 5 } > 0);
  Alcotest.(check bool) "replica ties" true
    (compare { round = 1; replica = 2 } { round = 1; replica = 1 } > 0);
  let b = next { round = 3; replica = 1 } ~me:0 in
  Alcotest.(check bool) "next is larger" true (compare b { round = 3; replica = 1 } > 0)

let msg_roundtrip () =
  let open Paxos in
  let msgs =
    [
      Msg.Prepare { ballot = { round = 3; replica = 1 } };
      Msg.Promise
        {
          ballot = { round = 3; replica = 1 };
          accepted = [ (7, { round = 2; replica = 0 }, "val") ];
          committed_upto = 6;
        };
      Msg.Nack { ballot = { round = 9; replica = 2 } };
      Msg.Accept
        {
          ballot = { round = 3; replica = 1 };
          instance = 7;
          value = "v";
          prior = [ (6, "u") ];
        };
      Msg.Accepted { ballot = { round = 3; replica = 1 }; instance = 7 };
      Msg.Commit { instance = 7; value = "v" };
      Msg.Heartbeat
        { ballot = { round = 3; replica = 1 }; committed_upto = 7; hb_seq = 42 };
      Msg.Learn { from_instance = 4 };
      Msg.Learn_reply { entries = [ (4, "a"); (5, "b") ] };
      Msg.Lease_grant { ballot = { round = 3; replica = 1 }; hb_seq = 42 };
    ]
  in
  List.iter
    (fun m ->
      Alcotest.(check bool) "roundtrip" true (Msg.decode (Msg.encode m) = m))
    msgs

let store_basics () =
  let open Paxos in
  let st = Store.create () in
  Store.commit st 1 "a";
  Store.commit st 3 "c";
  Alcotest.(check int) "gap blocks upto" 1 (Store.committed_upto st);
  Store.commit st 2 "b";
  Alcotest.(check int) "contiguous" 3 (Store.committed_upto st);
  (match Store.commit st 2 "DIFFERENT" with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "conflicting commit must be rejected");
  Store.set_accepted st 4 { round = 1; replica = 0 } "d";
  Alcotest.(check int) "accepted above" 1 (List.length (Store.accepted_above st 3));
  Store.truncate_below st 3;
  Alcotest.(check (option string)) "gc'd" None (Store.committed st 1);
  Alcotest.(check (option string)) "kept" (Some "c") (Store.committed st 3)

let suite =
  [
    Alcotest.test_case "ballot ordering" `Quick ballot_ordering;
    Alcotest.test_case "msg roundtrip" `Quick msg_roundtrip;
    Alcotest.test_case "store basics" `Quick store_basics;
    Alcotest.test_case "election: single leader" `Quick election_single_leader;
    Alcotest.test_case "commit in order" `Quick commit_in_order;
    Alcotest.test_case "failover + restart catch-up" `Quick failover_elects_new_leader;
    Alcotest.test_case "agreement under loss" `Quick agreement_under_loss;
    Alcotest.test_case "partition heal catch-up" `Quick partition_heals_catch_up;
    Alcotest.test_case "no two leaders same ballot" `Quick no_two_leaders_same_ballot;
    Alcotest.test_case "value recovery across failover" `Quick value_recovery_across_failover;
  ]

(* --- Pipelined proposals (§3.1 piggybacking) --- *)

let mk_pipelined_cluster ?(seed = 5) ?(n = 3) ~depth () =
  let eng = Engine.create ~seed ~cores_per_node:4 ~num_nodes:n () in
  let net = Net.create eng in
  let nodes = List.init n Fun.id in
  let ctxs =
    Array.init n (fun _ ->
        {
          rep = Obj.magic ();
          store = Paxos.Store.create ();
          delivered = [];
          became_leader = 0;
        })
  in
  let cluster = { eng; net; nodes; ctxs } in
  List.iter
    (fun i ->
      let cfg =
        Paxos.Replica.default_config ~max_inflight:depth ~me:i ~peers:nodes ()
      in
      ctxs.(i).rep <- mk_replica net cfg ctxs.(i).store ctxs.(i))
    nodes;
  cluster

let pipelined_commits_in_order () =
  let c = mk_pipelined_cluster ~seed:71 ~depth:4 () in
  run_for c 1.0;
  let l = Option.get (current_leader c) in
  let rep = c.ctxs.(l).rep in
  (* Fire proposals as fast as the window allows. *)
  let submitted = ref 0 in
  ignore
    (Engine.spawn c.eng ~node:l (fun () ->
         while !submitted < 40 do
           if Paxos.Replica.propose rep (Printf.sprintf "p%d" !submitted) then
             incr submitted
           else Engine.sleep 1e-4
         done));
  run_for c 5.0;
  List.iter
    (fun i ->
      Alcotest.(check (list string))
        (Printf.sprintf "replica %d ordered" i)
        (List.init 40 (fun k -> Printf.sprintf "p%d" k))
        (delivered_values c.ctxs.(i)))
    c.nodes;
  (* The pipeline really was deeper than one. *)
  Alcotest.(check bool) "window opened" true
    (Paxos.Replica.can_propose rep)

let pipelined_safe_across_failover () =
  let c = mk_pipelined_cluster ~seed:73 ~depth:4 () in
  run_for c 1.0;
  let l = Option.get (current_leader c) in
  let rep = c.ctxs.(l).rep in
  ignore
    (Engine.spawn c.eng ~node:l (fun () ->
         for i = 1 to 4 do
           ignore (Paxos.Replica.propose rep (Printf.sprintf "q%d" i))
         done));
  (* Kill the leader with proposals potentially in flight. *)
  run_for c 0.002;
  Engine.crash_node c.eng l;
  run_for c 3.0;
  propose_values c [ "after" ];
  run_for c 2.0;
  (* Whatever survived, all replicas agree on the same ordered prefix. *)
  let alive = List.filter (fun i -> Engine.node_alive c.eng i) c.nodes in
  let seqs = List.map (fun i -> delivered_values c.ctxs.(i)) alive in
  (match seqs with
  | s :: rest -> List.iter (fun s' -> Alcotest.(check (list string)) "agree" s s') rest
  | [] -> Alcotest.fail "no live replicas");
  Alcotest.(check bool) "progress after failover" true
    (List.exists (fun s -> List.mem "after" s) seqs)

let pipelined_no_holes_with_loss () =
  let c = mk_pipelined_cluster ~seed:79 ~depth:4 () in
  Net.set_drop_probability c.net 0.1;
  run_for c 2.0;
  (match current_leader c with
  | None -> run_for c 2.0
  | Some _ -> ());
  let l = Option.get (current_leader c) in
  let rep = c.ctxs.(l).rep in
  let submitted = ref 0 in
  ignore
    (Engine.spawn c.eng ~node:l (fun () ->
         while !submitted < 30 do
           if Paxos.Replica.propose rep (Printf.sprintf "z%d" !submitted) then
             incr submitted
           else Engine.sleep 2e-4
         done));
  run_for c 10.0;
  Net.set_drop_probability c.net 0.;
  run_for c 5.0;
  (* Deliveries must be gapless prefixes of z0..z29 on every replica. *)
  List.iter
    (fun i ->
      let got = delivered_values c.ctxs.(i) in
      List.iteri
        (fun k v ->
          Alcotest.(check string)
            (Printf.sprintf "replica %d position %d" i k)
            (Printf.sprintf "z%d" k) v)
        got)
    c.nodes

(* --- Reconfiguration: membership changes through the log --- *)

let pump_until c ~limit pred =
  let deadline = Engine.clock c.eng +. limit in
  let rec go () =
    if pred () then true
    else if Engine.clock c.eng >= deadline then false
    else begin
      run_for c 0.05;
      go ()
    end
  in
  go ()

let drive_reconfig c new_peers =
  let ok =
    pump_until c ~limit:30. (fun () ->
        match current_leader c with
        | Some l
          when List.sort_uniq compare (Paxos.Replica.peers c.ctxs.(l).rep)
               = List.sort_uniq compare new_peers ->
          true
        | Some l ->
          ignore (Paxos.Replica.propose_reconfig c.ctxs.(l).rep new_peers);
          false
        | None -> false)
  in
  Alcotest.(check bool) "reconfig committed" true ok

let reconfig_add_then_remove () =
  let c = mk_cluster ~seed:91 () in
  run_for c 1.0;
  propose_values c [ "a"; "b" ];
  (* Grow: commit [0;1;2;3], then bring up the newcomer. *)
  let n3 = Engine.add_node c.eng in
  Alcotest.(check int) "new node id" 3 n3;
  drive_reconfig c [ 0; 1; 2; 3 ];
  let ctx3 =
    { rep = Obj.magic (); store = Paxos.Store.create (); delivered = []; became_leader = 0 }
  in
  let cfg3 = Paxos.Replica.default_config ~me:3 ~peers:[ 0; 1; 2; 3 ] () in
  ctx3.rep <- mk_replica c.net cfg3 ctx3.store ctx3;
  let c = { c with nodes = c.nodes @ [ 3 ]; ctxs = Array.append c.ctxs [| ctx3 |] } in
  run_for c 2.0;
  propose_values c [ "c"; "d" ];
  run_for c 2.0;
  (* The newcomer caught up on the full history, config entries hidden. *)
  Alcotest.(check (list string)) "newcomer replays all"
    [ "a"; "b"; "c"; "d" ] (delivered_values ctx3);
  (* Shrink: retire replica 0; it demotes itself when the entry applies. *)
  drive_reconfig c [ 1; 2; 3 ];
  run_for c 2.0;
  Alcotest.(check bool) "retired replica left the group" false
    (Paxos.Replica.is_member c.ctxs.(0).rep);
  Engine.crash_node c.eng 0;
  run_for c 2.0;
  propose_values c [ "e" ];
  run_for c 2.0;
  List.iter
    (fun i ->
      Alcotest.(check (list string))
        (Printf.sprintf "replica %d sequence" i)
        [ "a"; "b"; "c"; "d"; "e" ]
        (delivered_values c.ctxs.(i)))
    [ 1; 2; 3 ]

let reconfig_rejects_bad_transitions () =
  let c = mk_cluster ~seed:93 () in
  ignore (Engine.add_node c.eng) (* node 3, target of the valid add *);
  run_for c 1.0;
  let l = Option.get (current_leader c) in
  let rep = c.ctxs.(l).rep in
  let try_cfg peers = Paxos.Replica.propose_reconfig rep peers in
  let fiber_result = ref None in
  ignore
    (Engine.spawn c.eng ~node:l (fun () ->
         fiber_result :=
           Some
             ( try_cfg [ 0; 1; 2 ] (* no change *),
               try_cfg [ 0; 1; 3; 4 ] (* two changes at once *),
               try_cfg [] (* empty *),
               try_cfg [ 0; 1; 2; 3 ] (* valid: single add *) )));
  run_for c 1.0;
  match !fiber_result with
  | None -> Alcotest.fail "driver did not run"
  | Some (same, double, empty, ok) ->
    Alcotest.(check bool) "identity rejected" false same;
    Alcotest.(check bool) "double change rejected" false double;
    Alcotest.(check bool) "empty rejected" false empty;
    Alcotest.(check bool) "single add accepted" true ok

let reconfig_survives_leader_crash () =
  let c = mk_cluster ~seed:97 () in
  run_for c 1.0;
  propose_values c [ "x" ];
  let l = Option.get (current_leader c) in
  (* Propose the config change, then kill the leader before pumping to
     commitment: the entry either survives via value recovery or is
     re-proposed by the driver against the new leader. *)
  ignore
    (Engine.spawn c.eng ~node:l (fun () ->
         ignore (Paxos.Replica.propose_reconfig c.ctxs.(l).rep [ 0; 1; 2; 3 ])));
  run_for c 0.002;
  Engine.crash_node c.eng l;
  (* Bring up the newcomer right away, as [Cluster.add_replica] does: if
     the entry committed before the crash the quorum is already 3-of-4
     and the group needs node 3 to make progress. *)
  let n3 = Engine.add_node c.eng in
  Alcotest.(check int) "new node id" 3 n3;
  let ctx3 =
    { rep = Obj.magic (); store = Paxos.Store.create (); delivered = []; became_leader = 0 }
  in
  let cfg3 = Paxos.Replica.default_config ~me:3 ~peers:[ 0; 1; 2; 3 ] () in
  ctx3.rep <- mk_replica c.net cfg3 ctx3.store ctx3;
  let c = { c with nodes = c.nodes @ [ 3 ]; ctxs = Array.append c.ctxs [| ctx3 |] } in
  let ok =
    pump_until c ~limit:30. (fun () ->
        match current_leader c with
        | Some l'
          when Paxos.Replica.peers c.ctxs.(l').rep = [ 0; 1; 2; 3 ] -> true
        | Some l' ->
          ignore (Paxos.Replica.propose_reconfig c.ctxs.(l').rep [ 0; 1; 2; 3 ]);
          false
        | None -> false)
  in
  Alcotest.(check bool) "config committed despite crash" true ok;
  (* Exactly one config entry took effect: survivors agree on membership. *)
  List.iter
    (fun i ->
      if Engine.node_alive c.eng i then
        Alcotest.(check (list int))
          (Printf.sprintf "replica %d membership" i)
          [ 0; 1; 2; 3 ]
          (List.sort compare (Paxos.Replica.peers c.ctxs.(i).rep)))
    c.nodes

let suite =
  suite
  @ [
      Alcotest.test_case "pipelined commits in order" `Quick pipelined_commits_in_order;
      Alcotest.test_case "pipelined safe across failover" `Quick pipelined_safe_across_failover;
      Alcotest.test_case "pipelined no holes under loss" `Quick pipelined_no_holes_with_loss;
      Alcotest.test_case "reconfig: add then remove" `Quick reconfig_add_then_remove;
      Alcotest.test_case "reconfig: invalid transitions" `Quick reconfig_rejects_bad_transitions;
      Alcotest.test_case "reconfig: survives leader crash" `Quick reconfig_survives_leader_crash;
    ]
