(* Record/replay tests: the determinism property (§2.2) — a replica that
   follows the same trace reaches the same state — plus divergence
   detection, NATIVE_EXEC, edge reduction and mode switching. *)

open Sim
open Rexsync

(* Run [script slot api] on [n_slots] fibers bound to slots, in record
   mode, on node 0 of a fresh engine; return (runtime, final state). *)

let fresh_engine ?(seed = 11) ?(nodes = 2) () =
  Engine.create ~seed ~cores_per_node:8 ~num_nodes:nodes ()

let run_slots eng rt ~n_slots script =
  let done_count = ref 0 in
  for slot = 0 to n_slots - 1 do
    ignore
      (Engine.spawn eng ~node:(Runtime.node rt)
         ~name:(Printf.sprintf "slot%d" slot)
         (fun () ->
           Runtime.bind_slot rt slot;
           script slot;
           incr done_count))
  done;
  Engine.run eng;
  Alcotest.(check int) "all slots finished" n_slots !done_count

(* Feed a recorded trace into a replay runtime. *)
let feed ~from_rt ~to_rt =
  let d =
    Trace.Delta.extract (Runtime.trace from_rt)
      ~base:(Trace.end_cut (Runtime.trace to_rt))
  in
  (match Trace.Delta.apply (Runtime.trace to_rt) d with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Runtime.feed_progress to_rt

(* --- A tiny deterministic "app": slots hammer a shared counter. --- *)

type counter_app = {
  lock : Lock.t;
  mutable value : int;
  mutable order : (int * int) list;  (* (slot, value-after) in acquire order *)
}

let counter_app rt =
  { lock = Lock.create rt "counter"; value = 0; order = [] }

let counter_script app iterations slot =
  for _ = 1 to iterations do
    Lock.lock app.lock;
    Engine.work 1e-4;
    app.value <- app.value + 1;
    app.order <- (slot, app.value) :: app.order;
    Lock.unlock app.lock
  done

let record_counter ~seed ~n_slots ~iterations =
  let eng = fresh_engine ~seed () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:n_slots in
  let app = counter_app rt in
  run_slots eng rt ~n_slots (counter_script app iterations);
  (rt, app)

let replay_counter ?(replay_seed = 999) ~from_rt ~n_slots ~iterations () =
  let eng2 = fresh_engine ~seed:replay_seed () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:n_slots in
  Runtime.set_mode rt2 Runtime.Replay;
  let app2 = counter_app rt2 in
  feed ~from_rt ~to_rt:rt2;
  run_slots eng2 rt2 ~n_slots (counter_script app2 iterations);
  (rt2, app2)

let determinism_counter () =
  let n_slots = 4 and iterations = 25 in
  let rt, app = record_counter ~seed:3 ~n_slots ~iterations in
  (* Replay under a very different scheduler seed: the trace, not luck,
     must force the same interleaving. *)
  let _, app2 = replay_counter ~replay_seed:4242 ~from_rt:rt ~n_slots ~iterations () in
  Alcotest.(check int) "same value" app.value app2.value;
  Alcotest.(check (list (pair int int))) "same acquisition order" app.order app2.order

let replay_stats_accumulate () =
  let n_slots = 3 and iterations = 10 in
  let rt, _ = record_counter ~seed:5 ~n_slots ~iterations in
  let rt2, _ = replay_counter ~from_rt:rt ~n_slots ~iterations () in
  let s = Runtime.stats rt and s2 = Runtime.stats rt2 in
  Alcotest.(check int)
    "every recorded event replayed" s.events_recorded s2.events_replayed;
  Alcotest.(check bool) "some events recorded" true (s.events_recorded > 0);
  Alcotest.(check bool) "replay waited at least once" true (s2.waited_events > 0)

let divergence_detected () =
  let n_slots = 2 and iterations = 5 in
  let rt, _ = record_counter ~seed:7 ~n_slots ~iterations in
  let eng2 = fresh_engine () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:n_slots in
  Runtime.set_mode rt2 Runtime.Replay;
  let app2 = counter_app rt2 in
  let rogue = Lock.create rt2 "rogue" in
  feed ~from_rt:rt ~to_rt:rt2;
  let caught = ref false in
  for slot = 0 to n_slots - 1 do
    ignore
      (Engine.spawn eng2 ~node:0 (fun () ->
           Runtime.bind_slot rt2 slot;
           try
             (* Slot 0 deviates: touches a different lock first. *)
             if slot = 0 then Lock.lock rogue;
             counter_script app2 iterations slot
           with Runtime.Divergence _ -> caught := true))
  done;
  Engine.run eng2;
  Alcotest.(check bool) "divergence caught" true !caught

let nondet_recorded_and_replayed () =
  let eng = fresh_engine () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:1 in
  let recorded = ref [] in
  run_slots eng rt ~n_slots:1 (fun _slot ->
      for i = 1 to 5 do
        let v =
          Runtime.nondet rt (fun () -> string_of_int (i * 100 + Engine.self ()))
        in
        recorded := v :: !recorded
      done);
  let eng2 = fresh_engine ~seed:77 () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:1 in
  Runtime.set_mode rt2 Runtime.Replay;
  feed ~from_rt:rt ~to_rt:rt2;
  let replayed = ref [] in
  run_slots eng2 rt2 ~n_slots:1 (fun _slot ->
      for _ = 1 to 5 do
        let v = Runtime.nondet rt2 (fun () -> "WRONG") in
        replayed := v :: !replayed
      done);
  Alcotest.(check (list string)) "nondet values replayed" !recorded !replayed

let native_exec_not_recorded () =
  let eng = fresh_engine () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:1 in
  let l = Lock.create rt "singleton" in
  run_slots eng rt ~n_slots:1 (fun _slot ->
      Runtime.native_exec rt (fun () ->
          Lock.lock l;
          Lock.unlock l));
  Alcotest.(check int)
    "no events recorded inside NATIVE_EXEC" 0
    (Trace.event_count (Runtime.trace rt))

let unbound_fiber_is_native () =
  let eng = fresh_engine () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:1 in
  let l = Lock.create rt "lk" in
  ignore
    (Engine.spawn eng ~node:0 (fun () ->
         Lock.lock l;
         Lock.unlock l));
  Engine.run eng;
  Alcotest.(check int) "nothing recorded" 0 (Trace.event_count (Runtime.trace rt))

(* --- Edge reduction (§4.2): reduced traces still replay correctly and
   carry strictly fewer edges. --- *)

(* Nested locks make transitivity bite: when a thread inherits lock A
   from a peer, the edge on nested lock B is implied (A's release
   happens after B's in the peer). *)
type nested_app = { a : Lock.t; b : Lock.t; mutable value : int }

let nested_script app iterations _slot =
  for _ = 1 to iterations do
    Lock.lock app.a;
    Lock.lock app.b;
    Engine.work 1e-4;
    app.value <- app.value + 1;
    Lock.unlock app.b;
    Lock.unlock app.a
  done

let edge_reduction_effective () =
  let n_slots = 4 and iterations = 20 in
  let run_with reduce =
    let eng = fresh_engine ~seed:13 () in
    let rt = Runtime.create ~reduce_edges:reduce (Par.Backend.of_sim eng) ~node:0 ~slots:n_slots in
    let app = { a = Lock.create rt "A"; b = Lock.create rt "B"; value = 0 } in
    run_slots eng rt ~n_slots (nested_script app iterations);
    rt
  in
  let rt_red = run_with true and rt_full = run_with false in
  let red = Runtime.stats rt_red and full = Runtime.stats rt_full in
  Alcotest.(check bool)
    (Printf.sprintf "reduced %d < full %d" red.edges_recorded full.edges_recorded)
    true
    (red.edges_recorded < full.edges_recorded);
  Alcotest.(check bool) "something was reduced" true (red.edges_reduced > 0);
  (* The reduced trace still replays to the same state. *)
  let eng2 = fresh_engine ~seed:5 () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:n_slots in
  Runtime.set_mode rt2 Runtime.Replay;
  let app2 = { a = Lock.create rt2 "A"; b = Lock.create rt2 "B"; value = 0 } in
  feed ~from_rt:rt_red ~to_rt:rt2;
  run_slots eng2 rt2 ~n_slots (nested_script app2 iterations);
  Alcotest.(check int) "reduced trace replays" (n_slots * iterations) app2.value

(* --- Try-lock partial order (Fig. 4) --- *)

type try_app = { lock : Lock.t; mutable results : (int * bool) list }

let try_script app slot =
  if slot = 0 then begin
    Lock.lock app.lock;
    Engine.work 2e-3;
    Lock.unlock app.lock
  end
  else
    for _ = 1 to 3 do
      Engine.work 1e-4;
      let ok = Lock.try_lock app.lock in
      app.results <- (slot, ok) :: app.results;
      if ok then begin
        Engine.work 1e-4;
        Lock.unlock app.lock
      end
    done

let trylock_replay_matches () =
  let eng = fresh_engine ~seed:21 () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:3 in
  let app = { lock = Lock.create rt "try"; results = [] } in
  run_slots eng rt ~n_slots:3 (try_script app);
  let eng2 = fresh_engine ~seed:4000 () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:3 in
  Runtime.set_mode rt2 Runtime.Replay;
  let app2 = { lock = Lock.create rt2 "try"; results = [] } in
  feed ~from_rt:rt ~to_rt:rt2;
  run_slots eng2 rt2 ~n_slots:3 (try_script app2);
  (* Per-slot result sequences must match exactly (record/result checking). *)
  let per_slot app s =
    List.filter_map (fun (sl, ok) -> if sl = s then Some ok else None) app.results
  in
  for s = 1 to 2 do
    Alcotest.(check (list bool))
      (Printf.sprintf "slot %d try results" s)
      (per_slot app s) (per_slot app2 s)
  done

let trylock_partial_vs_total_edges () =
  let run po =
    let eng = fresh_engine ~seed:21 () in
    let rt = Runtime.create ~partial_order:po ~reduce_edges:false (Par.Backend.of_sim eng) ~node:0 ~slots:3 in
    let app = { lock = Lock.create rt "try"; results = [] } in
    run_slots eng rt ~n_slots:3 (try_script app);
    rt
  in
  let po = run true and total = run false in
  (* In total-order mode every event chains to its predecessor on the
     lock; ground-truth partial order gives the replay more freedom but
     the same behaviour.  Both must replay; totals differ. *)
  Alcotest.(check bool) "recorded edges differ" true
    (Trace.edge_count (Runtime.trace po) <> Trace.edge_count (Runtime.trace total)
    || Trace.event_count (Runtime.trace po)
       = Trace.event_count (Runtime.trace total))

(* --- Rwlock --- *)

type rw_app = {
  rw : Rwlock.t;
  mutable data : int;
  mutable reads : (int * int) list;  (* slot, value seen *)
}

let rw_script app slot =
  if slot = 0 then
    for _ = 1 to 10 do
      Rwlock.wr_lock app.rw;
      Engine.work 1e-4;
      app.data <- app.data + 1;
      Rwlock.wr_unlock app.rw
    done
  else
    for _ = 1 to 10 do
      Rwlock.rd_lock app.rw;
      Engine.work 5e-5;
      app.reads <- (slot, app.data) :: app.reads;
      Rwlock.rd_unlock app.rw
    done

let rwlock_replay () =
  let eng = fresh_engine ~seed:31 () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:3 in
  let app = { rw = Rwlock.create rt "rw"; data = 0; reads = [] } in
  run_slots eng rt ~n_slots:3 (rw_script app);
  let eng2 = fresh_engine ~seed:1234 () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:3 in
  Runtime.set_mode rt2 Runtime.Replay;
  let app2 = { rw = Rwlock.create rt2 "rw"; data = 0; reads = [] } in
  feed ~from_rt:rt ~to_rt:rt2;
  run_slots eng2 rt2 ~n_slots:3 (rw_script app2);
  let per_slot app s =
    List.filter_map (fun (sl, v) -> if sl = s then Some v else None) app.reads
  in
  Alcotest.(check int) "writer total" app.data app2.data;
  for s = 1 to 2 do
    Alcotest.(check (list int))
      (Printf.sprintf "slot %d reads identical" s)
      (per_slot app s) (per_slot app2 s)
  done

(* --- Condvar: a producer/consumer queue --- *)

type pc_app = {
  m : Lock.t;
  nonempty : Condvar.t;
  q : int Queue.t;
  mutable consumed : (int * int) list;  (* slot, item *)
}

let pc_script app n_items slot =
  if slot = 0 then
    for i = 1 to n_items do
      Engine.work 1e-4;
      Lock.lock app.m;
      Queue.push i app.q;
      Condvar.signal app.nonempty;
      Lock.unlock app.m
    done
  else begin
    let quota = n_items / 2 in
    for _ = 1 to quota do
      Lock.lock app.m;
      while Queue.is_empty app.q do
        Condvar.wait app.nonempty app.m
      done;
      let item = Queue.pop app.q in
      app.consumed <- (slot, item) :: app.consumed;
      Lock.unlock app.m
    done
  end

let condvar_replay () =
  let n_items = 20 in
  let mk rt =
    {
      m = Lock.create rt "pc.m";
      nonempty = Condvar.create rt "pc.cv";
      q = Queue.create ();
      consumed = [];
    }
  in
  let eng = fresh_engine ~seed:41 () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:3 in
  let app = mk rt in
  run_slots eng rt ~n_slots:3 (pc_script app n_items);
  Alcotest.(check int) "all consumed" n_items (List.length app.consumed);
  let eng2 = fresh_engine ~seed:987 () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:3 in
  Runtime.set_mode rt2 Runtime.Replay;
  let app2 = mk rt2 in
  feed ~from_rt:rt ~to_rt:rt2;
  run_slots eng2 rt2 ~n_slots:3 (pc_script app2 n_items);
  Alcotest.(check (list (pair int int)))
    "same consumption assignment" app.consumed app2.consumed

(* --- Semaphore --- *)

let sem_replay () =
  let script sem log slot =
    for _ = 1 to 8 do
      Sem.acquire sem;
      Engine.work 1e-4;
      log := slot :: !log;
      Sem.release sem
    done
  in
  let eng = fresh_engine ~seed:51 () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:3 in
  let sem = Sem.create rt "sem" 2 in
  let log = ref [] in
  run_slots eng rt ~n_slots:3 (script sem log);
  Alcotest.(check int) "record completed" 24 (List.length !log);
  let eng2 = fresh_engine ~seed:151 () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:3 in
  Runtime.set_mode rt2 Runtime.Replay;
  let sem2 = Sem.create rt2 "sem" 2 in
  let log2 = ref [] in
  feed ~from_rt:rt ~to_rt:rt2;
  run_slots eng2 rt2 ~n_slots:3 (script sem2 log2);
  Alcotest.(check int) "replay completed" 24 (List.length !log2)

(* --- Mode switch: replay a prefix, then get promoted and keep going. --- *)

let mode_switch_continues () =
  let n_slots = 2 in
  let rt, _app = record_counter ~seed:61 ~n_slots ~iterations:10 in
  let eng2 = fresh_engine ~seed:62 () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:n_slots in
  Runtime.set_mode rt2 Runtime.Replay;
  let app2 = counter_app rt2 in
  feed ~from_rt:rt ~to_rt:rt2;
  let finished = ref 0 in
  for slot = 0 to n_slots - 1 do
    ignore
      (Engine.spawn eng2 ~node:0 (fun () ->
           Runtime.bind_slot rt2 slot;
           (* Phase 1 replays the recorded 10 iterations; phase 2's first
              wrapper call parks in await_next until the promotion below
              switches the runtime to record mode. *)
           counter_script app2 10 slot;
           counter_script app2 5 slot;
           incr finished))
  done;
  (* The engine quiesces with both slots parked at the record/replay
     boundary; promote and let them continue recording. *)
  Engine.run eng2;
  Runtime.set_mode rt2 Runtime.Record;
  Runtime.feed_progress rt2;
  Engine.run eng2;
  Alcotest.(check int) "both slots finished" n_slots !finished;
  Alcotest.(check int) "replayed + newly recorded" ((10 + 5) * n_slots) app2.value;
  Alcotest.(check bool)
    "new events were recorded beyond the fed trace" true
    (Trace.event_count (Runtime.trace rt2) > Trace.event_count (Runtime.trace rt))

(* --- Resource id determinism --- *)

let resource_ids_deterministic () =
  let eng = fresh_engine () in
  let rt_a = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:2 in
  let rt_b = Runtime.create (Par.Backend.of_sim eng) ~node:1 ~slots:2 in
  let mk rt = List.init 5 (fun i -> Runtime.fresh_resource_id rt (Printf.sprintf "r%d" i)) in
  Alcotest.(check (list int)) "same global uids" (mk rt_a) (mk rt_b)

let suite =
  [
    Alcotest.test_case "determinism: counter order" `Quick determinism_counter;
    Alcotest.test_case "replay stats" `Quick replay_stats_accumulate;
    Alcotest.test_case "divergence detected" `Quick divergence_detected;
    Alcotest.test_case "nondet record/replay" `Quick nondet_recorded_and_replayed;
    Alcotest.test_case "NATIVE_EXEC not recorded" `Quick native_exec_not_recorded;
    Alcotest.test_case "unbound fiber native" `Quick unbound_fiber_is_native;
    Alcotest.test_case "edge reduction" `Quick edge_reduction_effective;
    Alcotest.test_case "trylock replay matches" `Quick trylock_replay_matches;
    Alcotest.test_case "trylock partial vs total" `Quick trylock_partial_vs_total_edges;
    Alcotest.test_case "rwlock replay" `Quick rwlock_replay;
    Alcotest.test_case "condvar replay" `Quick condvar_replay;
    Alcotest.test_case "semaphore replay" `Quick sem_replay;
    Alcotest.test_case "mode switch (promotion)" `Quick mode_switch_continues;
    Alcotest.test_case "resource uid determinism" `Quick resource_ids_deterministic;
  ]

(* --- Hybrid execution: native readers interleave with record/replay
   (lock-state pollution, §4.2). --- *)

let hybrid_native_readers () =
  (* Record with a native reader fiber hammering the same lock; then
     replay with another native reader.  The recorded slots must still
     replay exactly, with the readers transparently absorbed. *)
  let run_phase ~seed ~replay_from =
    let eng = fresh_engine ~seed () in
    let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:2 in
    (match replay_from with
    | Some from_rt ->
      Runtime.set_mode rt Runtime.Replay;
      feed ~from_rt ~to_rt:rt
    | None -> ());
    let app = counter_app rt in
    let stop = ref false in
    let reads = ref 0 in
    (* unbound fiber: always native *)
    ignore
      (Engine.spawn eng ~node:0 ~name:"reader" (fun () ->
           while not !stop do
             Lock.lock app.lock;
             Engine.work 2e-5;
             ignore app.value;
             incr reads;
             Lock.unlock app.lock
           done));
    let finished = ref 0 in
    for slot = 0 to 1 do
      ignore
        (Engine.spawn eng ~node:0 (fun () ->
             Runtime.bind_slot rt slot;
             counter_script app 15 slot;
             incr finished))
    done;
    Engine.run ~until:0.5 eng;
    stop := true;
    Engine.run eng;
    Alcotest.(check int) "slots finished" 2 !finished;
    Alcotest.(check bool) "reader made progress" true (!reads > 0);
    (rt, app)
  in
  let rt, app = run_phase ~seed:71 ~replay_from:None in
  let _, app2 = run_phase ~seed:72 ~replay_from:(Some rt) in
  Alcotest.(check int) "hybrid replay converges" app.value app2.value;
  Alcotest.(check (list (pair int int))) "same order" app.order app2.order

let trylock_pollution_retry () =
  (* Replay a recorded successful try-lock while a native fiber
     transiently holds the real lock: the wrapper must retry until it
     reproduces the recorded success. *)
  let eng = fresh_engine ~seed:81 () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:1 in
  let l = Lock.create rt "t" in
  let got = ref false in
  run_slots eng rt ~n_slots:1 (fun _ ->
      Engine.work 1e-4;
      got := Lock.try_lock l;
      if !got then Lock.unlock l);
  Alcotest.(check bool) "recorded success" true !got;
  (* Replay with a native holder occupying the lock initially. *)
  let eng2 = fresh_engine ~seed:82 () in
  let rt2 = Runtime.create (Par.Backend.of_sim eng2) ~node:0 ~slots:1 in
  Runtime.set_mode rt2 Runtime.Replay;
  let l2 = Lock.create rt2 "t" in
  feed ~from_rt:rt ~to_rt:rt2;
  ignore
    (Engine.spawn eng2 ~node:0 ~name:"polluter" (fun () ->
         Lock.lock l2;
         Engine.work 5e-4;
         (* longer than the recorded attempt point *)
         Lock.unlock l2));
  let got2 = ref false in
  run_slots eng2 rt2 ~n_slots:1 (fun _ ->
      Engine.work 1e-4;
      got2 := Lock.try_lock l2;
      if !got2 then Lock.unlock l2);
  Alcotest.(check bool) "replay retried through pollution" true !got2

(* Busy time can never exceed cores x elapsed time. *)
let prop_work_conservation =
  QCheck.Test.make ~name:"engine work conservation" ~count:50
    QCheck.(pair small_int (int_range 1 20))
    (fun (seed, jobs) ->
      let eng = Engine.create ~seed ~cores_per_node:4 ~num_nodes:1 () in
      for i = 1 to jobs do
        ignore
          (Engine.spawn eng ~node:0 (fun () ->
               Engine.work (1e-3 *. float_of_int (1 + (i mod 5)))))
      done;
      Engine.run eng;
      Engine.busy_time eng 0 <= (4. *. Engine.clock eng) +. 1e-9)

let extra_suite =
  [
    Alcotest.test_case "hybrid native readers" `Quick hybrid_native_readers;
    Alcotest.test_case "trylock pollution retry" `Quick trylock_pollution_retry;
    QCheck_alcotest.to_alcotest prop_work_conservation;
  ]

let suite = suite @ extra_suite

(* --- Property: ANY script of synchronization operations records and
   replays to the same state, under a different scheduler seed. --- *)

type op = MutexCycle of int | TryCycle of int | RwRead of int | RwWrite of int
        | SemCycle of int | NondetOp

let op_gen n_res =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun k -> MutexCycle (k mod n_res)) small_nat);
        (2, map (fun k -> TryCycle (k mod n_res)) small_nat);
        (2, map (fun k -> RwRead (k mod n_res)) small_nat);
        (2, map (fun k -> RwWrite (k mod n_res)) small_nat);
        (1, map (fun k -> SemCycle (k mod n_res)) small_nat);
        (1, return NondetOp);
      ])

let script_gen =
  QCheck.Gen.(
    let* n_slots = int_range 2 4 in
    let* scripts = list_repeat n_slots (list_size (int_bound 25) (op_gen 3)) in
    let* seed_a = int_bound 10_000 in
    let* seed_b = int_bound 10_000 in
    return (n_slots, scripts, seed_a, seed_b))

(* Every mutable cell is guarded by exactly one primitive — the model
   Rex requires (no data races); nondet values land in slot-local cells. *)
type rand_app = {
  mutexes : Lock.t array;
  rws : Rwlock.t array;
  sems : Sem.t array;
  mstate : int array;  (* guarded by mutexes.(k) *)
  wstate : int array;  (* guarded by rws.(k) in write mode *)
  slot_state : int array;  (* slot-local *)
}

let mk_rand_app rt n_res n_slots =
  {
    mutexes = Array.init n_res (fun i -> Lock.create rt (Printf.sprintf "m%d" i));
    rws = Array.init n_res (fun i -> Rwlock.create rt (Printf.sprintf "w%d" i));
    sems = Array.init n_res (fun i -> Sem.create rt (Printf.sprintf "s%d" i) 2);
    mstate = Array.make n_res 0;
    wstate = Array.make n_res 0;
    slot_state = Array.make n_slots 0;
  }

let run_op rt app slot = function
  | MutexCycle k ->
    Lock.lock app.mutexes.(k);
    Engine.work 2e-5;
    app.mstate.(k) <- Hashtbl.hash (app.mstate.(k), slot, k);
    Lock.unlock app.mutexes.(k)
  | TryCycle k ->
    if Lock.try_lock app.mutexes.(k) then begin
      app.mstate.(k) <- Hashtbl.hash (app.mstate.(k), slot, k, "try");
      Lock.unlock app.mutexes.(k)
    end
  | RwRead k ->
    Rwlock.rd_lock app.rws.(k);
    Engine.work 1e-5;
    app.slot_state.(slot) <- Hashtbl.hash (app.slot_state.(slot), app.wstate.(k));
    Rwlock.rd_unlock app.rws.(k)
  | RwWrite k ->
    Rwlock.wr_lock app.rws.(k);
    Engine.work 1e-5;
    app.wstate.(k) <- Hashtbl.hash (app.wstate.(k), slot, k, "w");
    Rwlock.wr_unlock app.rws.(k)
  | SemCycle k ->
    Sem.acquire app.sems.(k);
    Engine.work 1e-5;
    Sem.release app.sems.(k)
  | NondetOp ->
    let v = Runtime.nondet rt (fun () -> string_of_int (Engine.self ())) in
    app.slot_state.(slot) <- Hashtbl.hash (app.slot_state.(slot), v)

let run_random_phase ~seed ~n_slots ~scripts ~replay_from =
  let eng = fresh_engine ~seed () in
  let rt = Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:n_slots in
  (match replay_from with
  | Some from_rt ->
    Runtime.set_mode rt Runtime.Replay;
    feed ~from_rt ~to_rt:rt
  | None -> ());
  let app = mk_rand_app rt 3 n_slots in
  let finished = ref 0 in
  List.iteri
    (fun slot ops ->
      ignore
        (Engine.spawn eng ~node:0 (fun () ->
             Runtime.bind_slot rt slot;
             List.iter (run_op rt app slot) ops;
             incr finished)))
    scripts;
  Engine.run eng;
  (rt, app, !finished)

let prop_random_scripts_deterministic =
  QCheck.Test.make ~name:"random sync scripts replay deterministically"
    ~count:40 (QCheck.make script_gen)
    (fun (n_slots, scripts, seed_a, seed_b) ->
      let rt, app, fin1 =
        run_random_phase ~seed:seed_a ~n_slots ~scripts ~replay_from:None
      in
      let _, app2, fin2 =
        run_random_phase ~seed:(seed_b + 20000) ~n_slots ~scripts
          ~replay_from:(Some rt)
      in
      fin1 = n_slots && fin2 = n_slots && app.mstate = app2.mstate
      && app.wstate = app2.wstate
      && app.slot_state = app2.slot_state)

let suite =
  suite @ [ QCheck_alcotest.to_alcotest prop_random_scripts_deterministic ]
