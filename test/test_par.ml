(* lib/par: the real-parallel domains backend.

   Three groups:
   - Par.Sync primitives on a running pool, mirroring the Msync cases in
     test_sim.ml (exclusion, try_lock, ownership errors, cond
     wait/signal/broadcast, rwlock reader sharing + writer preference,
     semaphore counting);
   - pool/fiber mechanics (wall-clock sleep, exception propagation
     through join, atomic uid minting, rng pinning);
   - cross-backend equivalence: the same op sequences through the
     record-mode runtime on the simulator and on domains produce
     identical application digests.

   Pools are kept at 1-2 domains and workloads tiny: the suite must stay
   cheap on a single-core CI runner, and with one domain the scheduler
   interleaves fibers only at park/yield points — which is exactly what
   the overlap tests exercise via explicit [Engine.yield]. *)

open Sim
module R = Rex_core

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Run [f d] (which spawns fibers), join them, shut the pool down even
   on failure. *)
let run_domains ?(domains = 1) ?(seed = 11) f =
  let d = Par.Domains.create ~seed ~domains () in
  Fun.protect
    ~finally:(fun () -> Par.Domains.shutdown d)
    (fun () ->
      let r = f d in
      Par.Domains.join d;
      r)

(* --- Par.Sync, mirroring the Msync cases --- *)

let mutex_exclusion () =
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  run_domains ~domains:2 (fun d ->
      let m = Par.Sync.Mutex.create () in
      for _ = 1 to 20 do
        Par.Domains.spawn d ~node:0 (fun () ->
            Par.Sync.Mutex.lock m;
            incr inside;
            max_inside := max !max_inside !inside;
            Engine.yield ();
            decr inside;
            incr total;
            Par.Sync.Mutex.unlock m)
      done);
  check_int "mutual exclusion" 1 !max_inside;
  check_int "all critical sections ran" 20 !total

let mutex_try_lock () =
  run_domains (fun d ->
      Par.Domains.spawn d ~node:0 (fun () ->
          let m = Par.Sync.Mutex.create () in
          check_bool "first try succeeds" true (Par.Sync.Mutex.try_lock m);
          check_bool "second try fails" false (Par.Sync.Mutex.try_lock m);
          Par.Sync.Mutex.unlock m;
          check_bool "after unlock succeeds" true (Par.Sync.Mutex.try_lock m);
          Par.Sync.Mutex.unlock m))

let mutex_unlock_not_holder () =
  let raised = ref false in
  run_domains (fun d ->
      let m = Par.Sync.Mutex.create () in
      Par.Domains.spawn d ~node:0 (fun () ->
          match Par.Sync.Mutex.unlock m with
          | exception Invalid_argument _ -> raised := true
          | () -> ()));
  check_bool "unlock without holding raises" true !raised

let cond_signal_wakes_one () =
  let woken = ref 0 in
  run_domains (fun d ->
      let m = Par.Sync.Mutex.create () in
      let c = Par.Sync.Cond.create () in
      for _ = 1 to 3 do
        Par.Domains.spawn d ~node:0 (fun () ->
            Par.Sync.Mutex.lock m;
            Par.Sync.Cond.wait c m;
            incr woken;
            Par.Sync.Mutex.unlock m)
      done;
      Par.Domains.spawn d ~node:0 (fun () ->
          Engine.sleep 0.02;
          Par.Sync.Mutex.lock m;
          Par.Sync.Cond.signal c;
          Par.Sync.Mutex.unlock m;
          Engine.sleep 0.02;
          Par.Sync.Mutex.lock m;
          Par.Sync.Cond.broadcast c;
          Par.Sync.Mutex.unlock m));
  check_int "1 + 2 woken" 3 !woken

let rwlock_readers_share () =
  let concurrent_readers = ref 0 and max_readers = ref 0 in
  let writer_alone = ref true in
  (* Rendezvous on a monotonic counter: each reader holds rd_lock until
     all five are inside, so the overlap is forced, not left to the
     scheduler (readers that ran back-to-back used to flake this).  The
     writer stays off the lock until the readers are all in, so writer
     preference cannot park a late reader and deadlock the rendezvous. *)
  let entered = ref 0 in
  run_domains (fun d ->
      let l = Par.Sync.Rwlock.create () in
      for _ = 1 to 5 do
        Par.Domains.spawn d ~node:0 (fun () ->
            Par.Sync.Rwlock.rd_lock l;
            incr concurrent_readers;
            incr entered;
            max_readers := max !max_readers !concurrent_readers;
            while !entered < 5 do Engine.yield () done;
            max_readers := max !max_readers !concurrent_readers;
            decr concurrent_readers;
            Par.Sync.Rwlock.rd_unlock l)
      done;
      Par.Domains.spawn d ~node:0 (fun () ->
          while !entered < 5 do Engine.yield () done;
          Par.Sync.Rwlock.wr_lock l;
          if !concurrent_readers > 0 then writer_alone := false;
          Engine.yield ();
          Par.Sync.Rwlock.wr_unlock l));
  check_bool "readers overlapped" true (!max_readers > 1);
  check_bool "writer excluded readers" true !writer_alone

(* Once a writer waits, later readers must not barge past it. *)
let rwlock_writer_preference () =
  let order = ref [] in
  let note x = order := x :: !order in
  run_domains (fun d ->
      let l = Par.Sync.Rwlock.create () in
      Par.Domains.spawn d ~node:0 (fun () ->
          Par.Sync.Rwlock.rd_lock l;
          note `R1;
          Engine.sleep 0.02;
          Par.Sync.Rwlock.rd_unlock l);
      Par.Domains.spawn d ~node:0 (fun () ->
          Engine.sleep 0.005;
          Par.Sync.Rwlock.wr_lock l;
          note `W;
          Par.Sync.Rwlock.wr_unlock l);
      Par.Domains.spawn d ~node:0 (fun () ->
          Engine.sleep 0.01;
          (* the writer is already queued: this reader must wait for it *)
          Par.Sync.Rwlock.rd_lock l;
          note `R2;
          Par.Sync.Rwlock.rd_unlock l));
  check_bool "writer ran before the late reader" true
    (!order = [ `R2; `W; `R1 ])

let sem_counting () =
  let inside = ref 0 and max_inside = ref 0 in
  run_domains (fun d ->
      let s = Par.Sync.Sem.create 2 in
      for _ = 1 to 10 do
        Par.Domains.spawn d ~node:0 (fun () ->
            Par.Sync.Sem.acquire s;
            incr inside;
            max_inside := max !max_inside !inside;
            Engine.yield ();
            Engine.yield ();
            decr inside;
            Par.Sync.Sem.release s)
      done);
  check_int "at most 2 inside" 2 !max_inside

(* --- Pool / fiber mechanics --- *)

let sleep_is_wall_clock () =
  let elapsed = ref 0. in
  run_domains (fun d ->
      Par.Domains.spawn d ~node:0 (fun () ->
          let t0 = Engine.now () in
          Engine.sleep 0.02;
          elapsed := Engine.now () -. t0));
  check_bool "slept at least ~20ms" true (!elapsed >= 0.015)

let fiber_exn_reaches_join () =
  let d = Par.Domains.create ~seed:3 ~domains:1 () in
  Par.Domains.spawn d ~node:0 (fun () -> failwith "boom");
  (match Par.Domains.join d with
  | exception Failure m -> check_string "exn carried" "boom" m
  | () -> Alcotest.fail "join must re-raise the fiber's exception");
  Par.Domains.shutdown d

let uids_distinct_across_fibers () =
  let per = 50 and fibers = 4 in
  let drawn = Array.make (per * fibers) (-1) in
  run_domains ~domains:2 (fun d ->
      let bk = Par.Domains.backend d in
      for f = 0 to fibers - 1 do
        Par.Domains.spawn d ~node:0 (fun () ->
            for i = 0 to per - 1 do
              drawn.((f * per) + i) <- Par.Backend.fresh_uid bk
            done)
      done);
  let sorted = Array.copy drawn in
  Array.sort compare sorted;
  let dup = ref false in
  Array.iteri
    (fun i v -> if i > 0 && sorted.(i - 1) = v then dup := true)
    sorted;
  check_bool "no uid minted twice" false !dup

let pinned_rng_rejects_cross_domain_draw () =
  let r = Rng.create 5 in
  Rng.pin r;
  ignore (Rng.bits64 r);
  let raised =
    Domain.join
      (Domain.spawn (fun () ->
           match Rng.bits64 r with
           | exception Invalid_argument _ -> true
           | _ -> false))
  in
  check_bool "pinned rng raises off-domain" true raised;
  (* an unpinned split may be handed to another domain *)
  let child = Rng.split r in
  let ok =
    Domain.join (Domain.spawn (fun () -> ignore (Rng.bits64 child); true))
  in
  check_bool "split child usable off-domain" true ok

(* --- Cross-backend equivalence --- *)

(* Drive [factory] through the record-mode runtime: [workers] slot-bound
   fibers, each executing [ops] requests from its own seeded generator.
   Returns the application digest. *)
let exec_on_domains ~seed ~workers ~ops ~factory ~gen =
  run_domains ~domains:2 ~seed (fun d ->
      let rt =
        Rexsync.Runtime.create (Par.Domains.backend d) ~node:0 ~slots:workers
      in
      let api = R.Api.make rt in
      let app : R.App.t = factory api in
      ignore (R.Api.seal api);
      for w = 0 to workers - 1 do
        Par.Domains.spawn d ~node:0 (fun () ->
            Rexsync.Runtime.bind_slot rt w;
            let rng = Rng.create (seed + (97 * w)) in
            for _ = 1 to ops do
              ignore (app.R.App.execute ~request:(gen rng))
            done;
            Rexsync.Runtime.unbind_slot rt)
      done;
      app)
  |> fun (app : R.App.t) -> app.R.App.digest ()

let exec_on_sim ~seed ~workers ~ops ~factory ~gen =
  let eng = Engine.create ~seed ~cores_per_node:workers ~num_nodes:1 () in
  let rt =
    Rexsync.Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:workers
  in
  let api = R.Api.make rt in
  let app : R.App.t = factory api in
  ignore (R.Api.seal api);
  for w = 0 to workers - 1 do
    ignore
      (Engine.spawn eng ~node:0 (fun () ->
           Rexsync.Runtime.bind_slot rt w;
           let rng = Rng.create (seed + (97 * w)) in
           for _ = 1 to ops do
             ignore (app.R.App.execute ~request:(gen rng))
           done;
           Rexsync.Runtime.unbind_slot rt))
  done;
  Engine.run ~until:3600. eng;
  app.R.App.digest ()

(* A single worker makes the request order itself identical, so any
   store — even an order-sensitive one — must reach the same state. *)
let kvstore_single_worker_digests_agree () =
  let factory = Apps.Leveldb.factory () in
  let gen rng =
    let k = Rng.int rng 50 in
    if Rng.bool rng then Printf.sprintf "SET k%d v%d" k (Rng.int rng 1000)
    else Printf.sprintf "GET k%d" k
  in
  let dom = exec_on_domains ~seed:21 ~workers:1 ~ops:200 ~factory ~gen in
  let sim = exec_on_sim ~seed:21 ~workers:1 ~ops:200 ~factory ~gen in
  check_string "kv digests agree" sim dom

(* Commutative per-key counters: with per-worker request streams fixed,
   the final totals are independent of interleaving, so multi-worker
   runs on both backends must also agree. *)
let counter_factory ~keys () : R.App.factory =
 fun api ->
  let pool = Array.init keys (fun i -> R.Api.lock api (Printf.sprintf "c%d" i)) in
  let counters = Array.make keys 0 in
  let execute ~request =
    match Apps.Util.words request with
    | [ "INC"; idx ] ->
      let i = int_of_string idx mod keys in
      Rexsync.Lock.with_lock pool.(i) (fun () ->
          counters.(i) <- counters.(i) + 1;
          string_of_int counters.(i))
    | _ -> "ERR"
  in
  {
    R.App.name = "counter";
    execute;
    query = (fun ~request:_ -> "OK");
    write_checkpoint =
      (fun sink -> Codec.write_array sink Codec.write_uvarint counters);
    read_checkpoint =
      (fun src ->
        let a = Codec.read_array src Codec.read_uvarint in
        Array.blit a 0 counters 0 (min (Array.length a) keys));
    digest =
      (fun () ->
        String.concat "/" (Array.to_list (Array.map string_of_int counters)));
  }

let counter_multi_worker_digests_agree () =
  let keys = 8 in
  let gen rng = Printf.sprintf "INC %d" (Rng.int rng keys) in
  let dom =
    exec_on_domains ~seed:33 ~workers:4 ~ops:100
      ~factory:(counter_factory ~keys ()) ~gen
  in
  let sim =
    exec_on_sim ~seed:33 ~workers:4 ~ops:100
      ~factory:(counter_factory ~keys ()) ~gen
  in
  check_string "counter digests agree" sim dom

let suite =
  [
    Alcotest.test_case "sync: mutex exclusion" `Quick mutex_exclusion;
    Alcotest.test_case "sync: mutex try_lock" `Quick mutex_try_lock;
    Alcotest.test_case "sync: mutex unlock checks holder" `Quick
      mutex_unlock_not_holder;
    Alcotest.test_case "sync: cond signal/broadcast" `Quick
      cond_signal_wakes_one;
    Alcotest.test_case "sync: rwlock readers share" `Quick rwlock_readers_share;
    Alcotest.test_case "sync: rwlock writer preference" `Quick
      rwlock_writer_preference;
    Alcotest.test_case "sync: semaphore counting" `Quick sem_counting;
    Alcotest.test_case "pool: sleep is wall-clock" `Quick sleep_is_wall_clock;
    Alcotest.test_case "pool: fiber exception reaches join" `Quick
      fiber_exn_reaches_join;
    Alcotest.test_case "backend: uids distinct across fibers" `Quick
      uids_distinct_across_fibers;
    Alcotest.test_case "rng: pinning enforces the split handoff rule" `Quick
      pinned_rng_rejects_cross_domain_draw;
    Alcotest.test_case "equivalence: kv store, single worker" `Quick
      kvstore_single_worker_digests_agree;
    Alcotest.test_case "equivalence: counters, 4 workers" `Quick
      counter_multi_worker_digests_agree;
  ]
