(* lib/sched: the conflict-aware parallel SMR stacks.

   Four groups:
   - the shared conflict oracles (kv grammar, counter, session-envelope
     wrapping incl. the decode-error counter that replaced Eve's silent
     fallback);
   - the conflict DAG (same-key serialization, distinct-key parallelism,
     multi-key fan-in, barriers, trim-on-complete, double-complete);
   - the execution stage on the sim backend: log order preserved for
     conflicts in both modes, unknown requests serialize as barriers,
     early-mode rendezvous ordering across workers, read parking — plus
     the qcheck property that both modes reproduce a serial replay's
     state digest on random order-sensitive kv mixes;
   - the full stack: a 3-replica cluster per mode (replies, replica
     convergence, lease reads), checkpoint/restore through the codec
     path, and one seeded fault-schedule run per mode through the check
     runner. *)

open Sim
module R = Rex_core
module C = Sched.Conflict

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* --- conflict oracles --- *)

let oracle_kv () =
  check_bool "SET claims its key" true (C.kv "SET a v1" = [ "a" ]);
  check_bool "DEL claims its key" true (C.kv "DEL a" = [ "a" ]);
  check_bool "GET claims its key" true (C.kv "GET a" = [ "a" ]);
  check_bool "RMW claims its key" true (C.kv "RMW a f" = [ "a" ]);
  check_bool "MGET claims every key" true (C.kv "MGET a b c" = [ "a"; "b"; "c" ]);
  check_bool "unknown verb claims nothing" true (C.kv "FROB a" = []);
  check_bool "counter is one register" true
    (C.counter "INC" = [ C.counter_key ] && C.counter "GET" = [ C.counter_key ])

let oracle_envelope () =
  let obs = Obs.create () in
  let oracle = C.with_session ~obs ~subsystem:"schedtest" ~node:0 C.kv in
  let errors = Obs.counter obs ~subsystem:"schedtest"
      ~labels:[ ("node", "0") ] "envelope_decode_errors"
  in
  (* raw request: passes straight through to the app oracle *)
  check_bool "raw request untouched" true (oracle "SET a v" = [ "a" ]);
  (* enveloped: per-client session key prepended to the payload's keys *)
  let env = { R.Session.Envelope.client = 7; seq = 3; payload = "SET a v" } in
  check_bool "envelope prepends session key" true
    (oracle (R.Session.Envelope.encode env) = [ C.session_key 7; "a" ]);
  check_int "no decode errors yet" 0 (Obs.Metric.value errors);
  (* a truncated envelope (magic byte intact) raises inside decode: the
     oracle must fall back to payload-only keys AND count it *)
  let enc = R.Session.Envelope.encode env in
  let truncated = String.sub enc 0 (String.length enc - 1) in
  ignore (oracle truncated);
  check_int "decode error counted" 1 (Obs.Metric.value errors)

(* --- the conflict DAG --- *)

let take_exn d =
  match Sched.Dag.take_ready d with
  | Some n -> n
  | None -> Alcotest.fail "expected a ready node"

let dag_same_key_serializes () =
  let d = Sched.Dag.create () in
  let _a = Sched.Dag.insert d ~keys:[ "k" ] "a" in
  let _b = Sched.Dag.insert d ~keys:[ "k" ] "b" in
  check_int "only the first is ready" 1 (Sched.Dag.ready_width d);
  let a = take_exn d in
  check_string "FIFO by admission" "a" (Sched.Dag.payload a);
  check_bool "b still blocked" true (Sched.Dag.take_ready d = None);
  Sched.Dag.complete d a;
  check_string "b ready after a" "b" (Sched.Dag.payload (take_exn d))

let dag_distinct_keys_parallel () =
  let d = Sched.Dag.create () in
  let _ = Sched.Dag.insert d ~keys:[ "k1" ] "a" in
  let _ = Sched.Dag.insert d ~keys:[ "k2" ] "b" in
  check_int "both ready at once" 2 (Sched.Dag.ready_width d)

let dag_multi_key_fan_in () =
  let d = Sched.Dag.create () in
  let a = Sched.Dag.insert d ~keys:[ "k1" ] "a" in
  let b = Sched.Dag.insert d ~keys:[ "k2" ] "b" in
  let _m = Sched.Dag.insert d ~keys:[ "k1"; "k2" ] "m" in
  let a' = take_exn d and b' = take_exn d in
  check_bool "a and b ready, m is not" true
    (List.sort compare [ Sched.Dag.payload a'; Sched.Dag.payload b' ]
     = [ "a"; "b" ]
    && Sched.Dag.take_ready d = None);
  Sched.Dag.complete d a;
  check_bool "m waits for both predecessors" true (Sched.Dag.take_ready d = None);
  Sched.Dag.complete d b;
  check_string "m ready after both" "m" (Sched.Dag.payload (take_exn d))

let dag_barrier_orders_everything () =
  let d = Sched.Dag.create () in
  let a = Sched.Dag.insert d ~keys:[ "k1" ] "a" in
  let x = Sched.Dag.insert_barrier d "x" in
  let _c = Sched.Dag.insert d ~keys:[ "k2" ] "c" in
  (* c's key is free, but the barrier is live: only a may run *)
  check_string "only a ready" "a" (Sched.Dag.payload (take_exn d));
  check_bool "barrier blocked on a" true (Sched.Dag.take_ready d = None);
  Sched.Dag.complete d a;
  check_string "barrier after a" "x" (Sched.Dag.payload (take_exn d));
  check_bool "c blocked on barrier" true (Sched.Dag.take_ready d = None);
  Sched.Dag.complete d x;
  check_string "c after barrier" "c" (Sched.Dag.payload (take_exn d))

let dag_trim_on_complete () =
  let d = Sched.Dag.create () in
  let a = Sched.Dag.insert d ~keys:[ "k" ] "a" in
  let b = Sched.Dag.insert d ~keys:[ "k" ] "b" in
  check_int "two live nodes" 2 (Sched.Dag.size d);
  ignore (take_exn d);
  Sched.Dag.complete d a;
  ignore (take_exn d);
  Sched.Dag.complete d b;
  check_int "graph empty after trim" 0 (Sched.Dag.size d);
  check_bool "idle" true (Sched.Dag.idle d);
  check_bool "key released" false (Sched.Dag.busy d [ "k" ]);
  (* the per-key tail must have been trimmed: a fresh insert on the same
     key is immediately ready, not chained behind a dead node *)
  let _c = Sched.Dag.insert d ~keys:[ "k" ] "c" in
  check_string "fresh insert ready at once" "c" (Sched.Dag.payload (take_exn d))

let dag_double_complete_raises () =
  let d = Sched.Dag.create () in
  let a = Sched.Dag.insert d ~keys:[ "k" ] "a" in
  ignore (take_exn d);
  Sched.Dag.complete d a;
  match Sched.Dag.complete d a with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "double complete must raise"

(* --- the execution stage (sim backend) --- *)

(* Admit [reqs] in order from a driver fiber, record execution order,
   drain; [op_cost] of Engine.work per op makes executions overlap in
   virtual time so ordering bugs actually surface. *)
let run_exec ?(workers = 2) ?(op_cost = 1e-5) ~mode ~conflict reqs =
  let eng = Engine.create ~seed:7 ~cores_per_node:8 ~num_nodes:1 () in
  let backend = Par.Backend.of_sim eng in
  let order = ref [] in
  let execute req =
    Engine.work op_cost;
    order := req :: !order;
    "OK"
  in
  let exec =
    Sched.Exec.create backend ~node:0 ~mode ~workers ~conflict ~execute
  in
  ignore
    (Engine.spawn eng ~node:0 (fun () ->
         List.iter (fun r -> Sched.Exec.admit exec r ignore) reqs;
         Sched.Exec.drain exec));
  Engine.run ~until:600. eng;
  (List.rev !order, Sched.Exec.stats exec)

let pos order req =
  let rec go i = function
    | [] -> Alcotest.fail (req ^ " never executed")
    | r :: _ when r = req -> i
    | _ :: tl -> go (i + 1) tl
  in
  go 0 order

let exec_conflicts_in_log_order mode () =
  (* every request hits one key: execution must be the admission order *)
  let reqs = List.init 20 (fun i -> Printf.sprintf "RMW k %d" i) in
  let order, stats = run_exec ~workers:4 ~mode ~conflict:C.kv reqs in
  check_bool "log order preserved under conflict" true (order = reqs);
  check_int "all executed" 20 stats.Sched.Exec.executed

let exec_unknown_serializes mode () =
  (* unparseable requests ([] keys) are global barriers: the whole
     stream degenerates to admission order *)
  let reqs =
    [ "SET a 1"; "FROB x"; "SET b 2"; "FROB y"; "SET a 3" ]
  in
  let order, stats = run_exec ~workers:4 ~mode ~conflict:C.kv reqs in
  check_bool "total order around barriers" true
    (pos order "SET a 1" < pos order "FROB x"
    && pos order "FROB x" < pos order "SET b 2"
    && pos order "SET b 2" < pos order "FROB y"
    && pos order "FROB y" < pos order "SET a 3");
  check_int "barrier per unknown request" 2 stats.Sched.Exec.barriers

let early_rendezvous_ordering () =
  (* two keys owned by different workers (the class map is
     [Hashtbl.hash key mod workers]); a spanning MGET must rendezvous:
     everything admitted before it on either queue runs first,
     everything after runs later *)
  let workers = 2 in
  let candidates = List.init 16 (fun i -> Printf.sprintf "k%d" i) in
  let owner k = Hashtbl.hash k mod workers in
  let ka = List.find (fun k -> owner k = 0) candidates in
  let kb = List.find (fun k -> owner k = 1) candidates in
  let reqs =
    [
      Printf.sprintf "SET %s 1" ka;
      Printf.sprintf "SET %s 1" kb;
      Printf.sprintf "MGET %s %s" ka kb;
      Printf.sprintf "SET %s 2" ka;
      Printf.sprintf "SET %s 2" kb;
    ]
  in
  let order, stats =
    run_exec ~workers ~mode:Sched.Exec.Early ~conflict:C.kv reqs
  in
  let m = pos order (Printf.sprintf "MGET %s %s" ka kb) in
  check_bool "writes before the MGET rendezvous" true
    (pos order (Printf.sprintf "SET %s 1" ka) < m
    && pos order (Printf.sprintf "SET %s 1" kb) < m);
  check_bool "writes after the MGET rendezvous" true
    (pos order (Printf.sprintf "SET %s 2" ka) > m
    && pos order (Printf.sprintf "SET %s 2" kb) > m);
  check_int "all executed" 5 stats.Sched.Exec.executed

let exec_park_until_quiet () =
  let eng = Engine.create ~seed:7 ~cores_per_node:8 ~num_nodes:1 () in
  let backend = Par.Backend.of_sim eng in
  let done_write = ref false in
  let execute _req =
    Engine.work 0.01;
    done_write := true;
    "OK"
  in
  let exec =
    Sched.Exec.create backend ~node:0 ~mode:Sched.Exec.Cbase ~workers:2
      ~conflict:C.kv ~execute
  in
  let read_after_write = ref false and unrelated_waited = ref false in
  ignore
    (Engine.spawn eng ~node:0 (fun () ->
         Sched.Exec.admit exec "SET hot 1" ignore;
         check_bool "hot busy while in flight" true
           (Sched.Exec.busy exec [ "hot" ]);
         (* a read on an unrelated key must not wait for the write *)
         Sched.Exec.park_until_quiet exec [ "cold" ];
         unrelated_waited := !done_write;
         Sched.Exec.park_until_quiet exec [ "hot" ];
         read_after_write := !done_write));
  Engine.run ~until:60. eng;
  check_bool "unrelated read did not park" false !unrelated_waited;
  check_bool "conflicting read parked until the write" true !read_after_write

(* qcheck: random order-sensitive kv mixes through both modes must end
   in the state a serial replay reaches (mirrors test_par's equivalence
   group).  RMW appends, so any per-key reordering changes the digest. *)
let apply_serial t req =
  match Apps.Util.words req with
  | [ "SET"; k; v ] -> Hashtbl.replace t k v
  | [ "DEL"; k ] -> Hashtbl.remove t k
  | [ "RMW"; k; v ] ->
    let old = Option.value (Hashtbl.find_opt t k) ~default:"0" in
    Hashtbl.replace t k (old ^ "+" ^ v)
  | _ -> ()

let kv_digest t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t []
  |> List.sort compare
  |> List.map (fun (k, v) -> k ^ "=" ^ v)
  |> String.concat ";"

let op_gen =
  QCheck.Gen.(
    map3
      (fun verb k v ->
        let key = Printf.sprintf "k%d" k in
        match verb with
        | 0 -> Printf.sprintf "SET %s v%d" key v
        | 1 -> Printf.sprintf "RMW %s %d" key v
        | 2 -> Printf.sprintf "DEL %s" key
        | 3 -> Printf.sprintf "GET %s" key
        | _ -> Printf.sprintf "MGET k%d k%d" k (v mod 5))
      (int_bound 4) (int_bound 4) (int_bound 9))

let prop_digest_matches_serial mode =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "%s replay matches serial digest"
         (Sched.Exec.mode_name mode))
    ~count:40
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) op_gen))
    (fun reqs ->
      let eng = Engine.create ~seed:11 ~cores_per_node:8 ~num_nodes:1 () in
      let backend = Par.Backend.of_sim eng in
      let t = Hashtbl.create 16 in
      let execute req =
        Engine.work 1e-5;
        apply_serial t req;
        "OK"
      in
      let exec =
        Sched.Exec.create backend ~node:0 ~mode ~workers:4 ~conflict:C.kv
          ~execute
      in
      ignore
        (Engine.spawn eng ~node:0 (fun () ->
             List.iter (fun r -> Sched.Exec.admit exec r ignore) reqs;
             Sched.Exec.drain exec));
      Engine.run ~until:600. eng;
      let serial = Hashtbl.create 16 in
      List.iter (apply_serial serial) reqs;
      kv_digest t = kv_digest serial)

(* --- the full stack --- *)

let make_cluster ~mode =
  let eng = Engine.create ~seed:5 ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let cfg = R.Config.make ~workers:4 ~replicas:[ 0; 1; 2 ] () in
  let servers =
    Array.init 3 (fun i ->
        Sched.Server.create net rpc cfg ~node:i
          ~paxos_store:(Paxos.Store.create ()) ~mode ~conflict:C.kv
          (Apps.Kyoto.factory ()))
  in
  Array.iter Sched.Server.start servers;
  Engine.run ~until:1.0 eng;
  let primary =
    match Array.find_opt Sched.Server.is_primary servers with
    | Some p -> p
    | None ->
      Engine.run ~until:5.0 eng;
      Option.get (Array.find_opt Sched.Server.is_primary servers)
  in
  (eng, servers, primary)

let cluster_smoke mode () =
  let eng, servers, primary = make_cluster ~mode in
  let n = 40 in
  let replies = ref 0 and read = ref "" in
  ignore
    (Engine.spawn eng ~node:3 (fun () ->
         for i = 0 to n - 1 do
           Sched.Server.submit primary
             (Printf.sprintf "SET s%d v%d" (i mod 7) i)
             (fun resp -> if resp <> None then incr replies)
         done));
  Engine.run ~until:30. eng;
  check_int "every submit answered" n !replies;
  (* lease read through the frontend read routing (parks behind
     conflicting in-flight writes) *)
  ignore
    (Engine.spawn eng ~node:3 (fun () ->
         read := Sched.Server.query primary "GET s0"));
  Engine.run ~until:40. eng;
  check_string "lease read sees the committed write" "v35" !read;
  let d = Sched.Server.app_digest servers.(0) in
  Array.iter
    (fun s -> check_string "replicas converged" d (Sched.Server.app_digest s))
    servers;
  check_bool "executed on every replica" true
    (Array.for_all (fun s -> Sched.Server.executed_requests s >= n) servers)

let checkpoint_roundtrip () =
  let eng, _servers, primary = make_cluster ~mode:Sched.Exec.Cbase in
  let phase = ref `Write and snap = ref "" and d0 = ref "" in
  ignore
    (Engine.spawn eng ~node:3 (fun () ->
         let put i =
           let resp = ref None in
           Sched.Server.submit primary
             (Printf.sprintf "SET c%d v%d" i i)
             (fun r -> resp := r);
           while !resp = None do
             Engine.sleep 0.01
           done
         in
         for i = 0 to 9 do
           put i
         done;
         d0 := Sched.Server.app_digest primary;
         snap := Sched.Server.checkpoint primary;
         phase := `Snapped;
         (* mutate past the snapshot, then rewind *)
         put 10;
         check_bool "state moved past the snapshot" true
           (Sched.Server.app_digest primary <> !d0);
         Sched.Server.restore primary !snap;
         phase := `Restored));
  Engine.run ~until:60. eng;
  check_bool "restore completed" true (!phase = `Restored);
  check_string "restore rewound to the checkpoint cut" !d0
    (Sched.Server.app_digest primary)

let runner_one_seed stack () =
  let nemesis = Option.get (Check.Nemesis.profile_of_string "crash") in
  let cfg =
    Check.Runner.default_config ~clients:2 ~ops_per_client:4 ~stack
      ~app:Check.Runner.Kv ~nemesis ~seed:77 ()
  in
  let o = Check.Runner.run_one cfg in
  check_bool "linearizable, converged and live" true (Check.Runner.passed o)

let suite =
  [
    Alcotest.test_case "conflict: kv + counter oracles" `Quick oracle_kv;
    Alcotest.test_case "conflict: session envelopes + decode-error counter"
      `Quick oracle_envelope;
    Alcotest.test_case "dag: same key serializes" `Quick dag_same_key_serializes;
    Alcotest.test_case "dag: distinct keys parallel" `Quick
      dag_distinct_keys_parallel;
    Alcotest.test_case "dag: multi-key fan-in" `Quick dag_multi_key_fan_in;
    Alcotest.test_case "dag: barrier orders everything" `Quick
      dag_barrier_orders_everything;
    Alcotest.test_case "dag: trim on complete" `Quick dag_trim_on_complete;
    Alcotest.test_case "dag: double complete raises" `Quick
      dag_double_complete_raises;
    Alcotest.test_case "exec: cbase keeps log order under conflict" `Quick
      (exec_conflicts_in_log_order Sched.Exec.Cbase);
    Alcotest.test_case "exec: early keeps log order under conflict" `Quick
      (exec_conflicts_in_log_order Sched.Exec.Early);
    Alcotest.test_case "exec: cbase serializes unknown requests" `Quick
      (exec_unknown_serializes Sched.Exec.Cbase);
    Alcotest.test_case "exec: early serializes unknown requests" `Quick
      (exec_unknown_serializes Sched.Exec.Early);
    Alcotest.test_case "exec: early rendezvous ordering" `Quick
      early_rendezvous_ordering;
    Alcotest.test_case "exec: reads park behind conflicting writes" `Quick
      exec_park_until_quiet;
    QCheck_alcotest.to_alcotest (prop_digest_matches_serial Sched.Exec.Cbase);
    QCheck_alcotest.to_alcotest (prop_digest_matches_serial Sched.Exec.Early);
    Alcotest.test_case "stack: cbase cluster smoke" `Quick
      (cluster_smoke Sched.Exec.Cbase);
    Alcotest.test_case "stack: early cluster smoke" `Quick
      (cluster_smoke Sched.Exec.Early);
    Alcotest.test_case "stack: checkpoint round-trip" `Quick
      checkpoint_roundtrip;
    Alcotest.test_case "stack: check runner passes on cbase" `Quick
      (runner_one_seed Check.Runner.Cbase);
    Alcotest.test_case "stack: check runner passes on early" `Quick
      (runner_one_seed Check.Runner.Early);
  ]
