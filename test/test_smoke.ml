(* Tier-1 wrappers around the bench smokes.  These used to run only as
   CI shell steps (`main.exe dedup --quick` etc.); linking them through
   bench_lib makes `dune runtest` execute the same assertions
   in-process, so a failure localizes to a named test case instead of a
   red CI job.  The benches signal failure with [Harness.Failed]. *)

let smoke f () =
  try f () with Bench_lib.Harness.Failed msg -> Alcotest.fail msg

let dedup () = Bench_lib.Dedup_smoke.run ~quick:true ~check:true ()

let shard () =
  Bench_lib.Shard_bench.run ~quick:true ~shards:[ 1; 2 ] ~app:"leveldb" ()

let compaction () = Bench_lib.Ablate.run ~quick:true ~only:"compaction" ()

let check_sweep () =
  Bench_lib.Check_bench.run ~quick:true ~stack:"rex" ~app:"kv"
    ~nemesis:"partition" ~seeds:5 ()

let suite =
  [
    Alcotest.test_case "dedup exactly-once under faults (quick)" `Slow
      (smoke dedup);
    Alcotest.test_case "shard scale-out + failover (quick)" `Slow
      (smoke shard);
    Alcotest.test_case "trace compaction ablation (quick)" `Slow
      (smoke compaction);
    Alcotest.test_case "check sweep rex/kv/partition (quick)" `Slow
      (smoke check_sweep);
  ]
