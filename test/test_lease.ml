(* Leader leases and the linearizable read fast path: lease grant /
   expiry / mutual-exclusion invariants at the Paxos layer, and
   stale-read fencing + quorum reads at the stack layer (SMR, Rex). *)

open Sim
module R = Rex_core

(* --- Paxos-level cluster (mirrors test_paxos's harness) --- *)

type replica_ctx = {
  mutable rep : Paxos.Replica.t;
  store : Paxos.Store.t;
}

type cluster = {
  eng : Engine.t;
  net : Net.t;
  nodes : int list;
  ctxs : replica_ctx array;
}

let mk_replica net cfg store =
  let cbs =
    {
      Paxos.Replica.on_committed = (fun _ _ -> ());
      on_become_leader = (fun () -> ());
      on_new_leader = (fun _ -> ());
    }
  in
  let rep = Paxos.Replica.create net cfg store cbs in
  Paxos.Replica.start rep;
  rep

let mk_cluster ?(seed = 5) ?(n = 3) () =
  let eng = Engine.create ~seed ~cores_per_node:4 ~num_nodes:n () in
  let net = Net.create eng in
  let nodes = List.init n Fun.id in
  let ctxs =
    Array.init n (fun i ->
        let store = Paxos.Store.create () in
        let cfg = Paxos.Replica.default_config ~me:i ~peers:nodes () in
        { rep = mk_replica net cfg store; store })
  in
  { eng; net; nodes; ctxs }

let run_for c seconds = Engine.run ~until:(Engine.clock c.eng +. seconds) c.eng

let current_leader c =
  List.find_opt
    (fun i ->
      Engine.node_alive c.eng i && Paxos.Replica.is_leader c.ctxs.(i).rep)
    c.nodes

let lease_holders c =
  List.filter
    (fun i ->
      Engine.node_alive c.eng i && Paxos.Replica.holds_lease c.ctxs.(i).rep)
    c.nodes

(* Steady state: the leader (and only the leader) holds a quorum lease,
   and its read index tracks commitment. *)
let lease_steady_state () =
  let c = mk_cluster () in
  run_for c 1.0;
  let l =
    match current_leader c with
    | Some l -> l
    | None -> Alcotest.fail "no leader elected"
  in
  Alcotest.(check bool) "leader holds lease" true
    (Paxos.Replica.holds_lease c.ctxs.(l).rep);
  Alcotest.(check (list int)) "only the leader holds it" [ l ]
    (lease_holders c);
  ignore
    (Engine.spawn c.eng ~node:l (fun () ->
         ignore (Paxos.Replica.propose c.ctxs.(l).rep "w1")));
  run_for c 0.5;
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "replica %d read_index covers the commit" i)
        true
        (Paxos.Replica.read_index c.ctxs.(i).rep >= 1))
    c.nodes

(* An isolated leader's lease must lapse once its grants (followers'
   clocks) run out — it can no longer serve local reads — and the
   healthy majority must elect a successor. *)
let lease_expires_in_partition () =
  let c = mk_cluster ~seed:7 () in
  run_for c 1.0;
  let l = Option.get (current_leader c) in
  List.iter (fun i -> if i <> l then Net.partition c.net l i) c.nodes;
  run_for c 0.5;
  Alcotest.(check bool) "isolated leader's lease lapsed" false
    (Paxos.Replica.holds_lease c.ctxs.(l).rep);
  let healthy_leader =
    List.exists
      (fun i -> i <> l && Paxos.Replica.is_leader c.ctxs.(i).rep)
      c.nodes
  in
  Alcotest.(check bool) "healthy side elected a successor" true healthy_leader;
  Net.heal_all c.net

(* Renewal racing leader change: through partition / heal churn, at no
   quiescent point may two live replicas both believe their lease is
   valid — the follower grants that fence foreign Prepares are the same
   grants that make the lease, so mutual exclusion is structural. *)
let no_two_leases_during_churn () =
  let c = mk_cluster ~seed:91 () in
  run_for c 1.0;
  let check_exclusion tag =
    match lease_holders c with
    | [] | [ _ ] -> ()
    | hs ->
      Alcotest.fail
        (Printf.sprintf "%s: %d live replicas hold a lease at once" tag
           (List.length hs))
  in
  for round = 1 to 3 do
    (match current_leader c with
    | Some l ->
      List.iter (fun i -> if i <> l then Net.partition c.net l i) c.nodes
    | None -> ());
    for step = 1 to 60 do
      run_for c 0.005;
      check_exclusion (Printf.sprintf "round %d partition step %d" round step)
    done;
    Net.heal_all c.net;
    for step = 1 to 60 do
      run_for c 0.005;
      check_exclusion (Printf.sprintf "round %d heal step %d" round step)
    done
  done;
  (* Liveness after the churn: someone reacquires a lease. *)
  let rec wait n =
    if lease_holders c = [] && n > 0 then begin
      run_for c 0.1;
      wait (n - 1)
    end
  in
  wait 30;
  Alcotest.(check bool) "a lease is held again after churn" true
    (lease_holders c <> [])

(* --- Stack level: an SMR cluster with real clients --- *)

type smr_cluster = {
  seng : Engine.t;
  snet : Net.t;
  srpc : Rpc.t;
  servers : Smr.t array;
  sreplicas : int list;
}

let client_node = 3

let mk_smr ?(seed = 42) () =
  let eng = Engine.create ~seed ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let replicas = [ 0; 1; 2 ] in
  let cfg = R.Config.make ~workers:1 ~propose_interval:2e-4 ~replicas () in
  let servers =
    Array.init 3 (fun i ->
        Smr.create net rpc cfg ~node:i ~paxos_store:(Paxos.Store.create ())
          (Apps.Kyoto.factory ()))
  in
  Array.iter Smr.start servers;
  Engine.run ~until:1.0 eng;
  if not (Array.exists Smr.is_primary servers) then Engine.run ~until:5.0 eng;
  { seng = eng; snet = net; srpc = rpc; servers; sreplicas = replicas }

(* Run [f] to completion in a client fiber, pumping the engine. *)
let in_fiber eng ~node f =
  let fin = ref false in
  ignore
    (Engine.spawn eng ~node ~name:"test-client" (fun () ->
         f ();
         fin := true));
  let steps = ref 0 in
  while (not !fin) && !steps < 600 do
    Engine.run ~until:(Engine.clock eng +. 0.5) eng;
    incr steps
  done;
  Alcotest.(check bool) "client fiber finished" true !fin

let smr_primary s =
  let rec find i =
    if i >= Array.length s.servers then Alcotest.fail "no SMR primary"
    else if Smr.is_primary s.servers.(i) then i
    else find (i + 1)
  in
  find 0

let frontend_count eng ~node name =
  Obs.Metric.value
    (Obs.counter (Engine.obs eng) ~subsystem:"frontend"
       ~labels:[ ("node", string_of_int node) ]
       name)

(* Fencing after primary isolation: a primary cut off from its peers
   (client links stay up) loses its lease, so a read aimed at it must
   not return pre-partition state — the client ends up at the new
   primary and sees the newer committed write. *)
let fencing_after_primary_isolation () =
  let s = mk_smr ~seed:17 () in
  let cl = R.Client.create s.srpc ~me:client_node ~replicas:s.sreplicas in
  in_fiber s.seng ~node:client_node (fun () ->
      Alcotest.(check (option string)) "v1 acked" (Some "OK")
        (R.Client.call cl "SET k v1"));
  let stale = smr_primary s in
  List.iter
    (fun i -> if i <> stale then Net.partition s.snet stale i)
    s.sreplicas;
  Engine.run ~until:(Engine.clock s.seng +. 0.5) s.seng;
  (* A second client commits v2 on the healthy side. *)
  let cl2 = R.Client.create s.srpc ~me:client_node ~replicas:s.sreplicas in
  in_fiber s.seng ~node:client_node (fun () ->
      Alcotest.(check (option string)) "v2 acked on healthy side" (Some "OK")
        (R.Client.call cl2 "SET k v2"));
  (* Read aimed at the stale primary: fenced local path, no quorum, so
     the client rotates until the new primary answers — never v1. *)
  let got = ref None in
  in_fiber s.seng ~node:client_node (fun () ->
      got := R.Client.query ~on:stale cl "GET k");
  Alcotest.(check (option string)) "read fenced: sees v2, not v1"
    (Some "v2") !got;
  Net.heal_all s.snet

(* Quorum read from a secondary: a non-primary replica serves a
   linearizable read via a majority read-index round — no redirect, no
   consensus slot — and the obs counter proves the route taken. *)
let quorum_read_from_secondary () =
  let s = mk_smr ~seed:23 () in
  let cl = R.Client.create s.srpc ~me:client_node ~replicas:s.sreplicas in
  let primary = smr_primary s in
  let secondary = List.find (fun i -> i <> primary) s.sreplicas in
  in_fiber s.seng ~node:client_node (fun () ->
      Alcotest.(check (option string)) "write acked" (Some "OK")
        (R.Client.call cl "SET q v7");
      Alcotest.(check (option string)) "secondary serves latest value"
        (Some "v7")
        (R.Client.query ~on:secondary cl "GET q"));
  Alcotest.(check bool) "served via the quorum-read route" true
    (frontend_count s.seng ~node:secondary "reads_fast_quorum" > 0)

(* Lease read on the primary: served locally under the lease, counted. *)
let lease_read_on_primary () =
  let s = mk_smr ~seed:29 () in
  let cl = R.Client.create s.srpc ~me:client_node ~replicas:s.sreplicas in
  let primary = smr_primary s in
  in_fiber s.seng ~node:client_node (fun () ->
      Alcotest.(check (option string)) "write acked" (Some "OK")
        (R.Client.call cl "SET p v9");
      Alcotest.(check (option string)) "primary serves latest value"
        (Some "v9")
        (R.Client.query ~on:primary cl "GET p"));
  Alcotest.(check bool) "served via the lease route" true
    (frontend_count s.seng ~node:primary "reads_fast_lease" > 0)

(* Rex: the primary's fast-path read is gated on commit of the observed
   speculative cut, so a query right after an acked write sees it. *)
let rex_reads_latest () =
  let cfg = R.Cluster.config ~workers:2 ~propose_interval:2e-4 () in
  let cluster = R.Cluster.launch ~seed:11 cfg (Apps.Kyoto.factory ()) in
  let eng = R.Cluster.engine cluster in
  let cl = R.Cluster.client cluster in
  in_fiber eng
    ~node:(R.Cluster.client_node cluster)
    (fun () ->
      for i = 1 to 5 do
        let v = Printf.sprintf "r%d" i in
        Alcotest.(check (option string))
          (Printf.sprintf "write %d acked" i)
          (Some "OK")
          (R.Client.call cl ("SET rk " ^ v));
        Alcotest.(check (option string))
          (Printf.sprintf "read %d sees it" i)
          (Some v)
          (R.Client.query cl "GET rk")
      done)

(* QCheck: after any acked write sequence, a fast-path read — on the
   primary or any secondary — observes the latest released write to
   that key.  Ops are derived from the generated seed so each case is a
   fresh deterministic cluster. *)
let prop_reads_see_latest_write =
  QCheck.Test.make ~name:"fast-path reads observe the latest released write"
    ~count:4
    QCheck.(int_range 0 1000)
    (fun case_seed ->
      let s = mk_smr ~seed:(1000 + case_seed) () in
      let cl = R.Client.create s.srpc ~me:client_node ~replicas:s.sreplicas in
      let rng = Rng.create (case_seed + 1) in
      let model = Hashtbl.create 8 in
      let ok = ref true in
      in_fiber s.seng ~node:client_node (fun () ->
          for i = 0 to 11 do
            let key = Printf.sprintf "pk%d" (Rng.int rng 4) in
            if Rng.float rng 1.0 < 0.5 then begin
              let v = Printf.sprintf "c%d" i in
              match R.Client.call cl (Printf.sprintf "SET %s %s" key v) with
              | Some _ -> Hashtbl.replace model key v
              | None -> ()  (* unacked: outcome ambiguous, skip *)
            end
            else begin
              let on = Rng.pick rng s.sreplicas in
              let expect =
                Option.value (Hashtbl.find_opt model key) ~default:"NOTFOUND"
              in
              match R.Client.query ~on cl ("GET " ^ key) with
              | Some got -> if got <> expect then ok := false
              | None -> ()  (* read timed out: no value released *)
            end
          done);
      !ok)

let suite =
  [
    Alcotest.test_case "lease: steady state" `Quick lease_steady_state;
    Alcotest.test_case "lease: expires in partition" `Quick
      lease_expires_in_partition;
    Alcotest.test_case "lease: no two holders during churn" `Quick
      no_two_leases_during_churn;
    Alcotest.test_case "fencing after primary isolation" `Quick
      fencing_after_primary_isolation;
    Alcotest.test_case "quorum read from a secondary" `Quick
      quorum_read_from_secondary;
    Alcotest.test_case "lease read on the primary" `Quick
      lease_read_on_primary;
    Alcotest.test_case "rex: reads see latest write" `Quick rex_reads_latest;
    QCheck_alcotest.to_alcotest prop_reads_see_latest_write;
  ]
