(* Tests for the correctness harness (lib/check): the linearizability
   checker against hand-built and generated histories, fate/ambiguity
   semantics, seeded-schedule determinism, failure shrinking, and the
   two liveness bugs PR 4 flushed out — pinned here as explicit nemesis
   schedules so they can never silently return. *)

module H = Check.History
module Lin = Check.Lin
module Spec = Check.Spec
module N = Check.Nemesis
module Runner = Check.Runner

(* --- History construction helpers --- *)

let ent ?(client = 0) id request invoke return_ fate =
  { H.id; client; request; invoke; return_; fate }

let ok r = H.Returned r

let verdict_of spec entries = (Lin.check spec entries).Lin.verdict

let is_lin = function Lin.Linearizable -> true | _ -> false
let is_nonlin = function Lin.Non_linearizable _ -> true | _ -> false

let check_lin msg spec entries =
  Alcotest.(check bool) msg true (is_lin (verdict_of spec entries))

let check_nonlin msg spec entries =
  Alcotest.(check bool) msg true (is_nonlin (verdict_of spec entries))

(* --- Register spec, hand-built histories --- *)

let register_sequential () =
  check_lin "sequential register history accepted" Spec.register
    [
      ent 0 "SET k a" 0. 1. (ok "OK");
      ent 1 "GET k" 2. 3. (ok "a");
      ent 2 "SET j b" 4. 5. (ok "OK");
      ent 3 "DEL k" 6. 7. (ok "OK");
      ent 4 "GET k" 8. 9. (ok "NOTFOUND");
      ent 5 "GET j" 10. 11. (ok "b");
    ]

let register_stale_read () =
  (* Both writes completed before the read began; reading the older
     value is the canonical non-linearizable history. *)
  check_nonlin "stale read rejected" Spec.register
    [
      ent 0 "SET k a" 0. 1. (ok "OK");
      ent 1 "SET k b" 2. 3. (ok "OK");
      ent 2 "GET k" 4. 5. (ok "a");
    ]

let register_concurrent_writes () =
  (* Two overlapping writes: a later read may observe either order. *)
  let history winner =
    [
      ent 0 "SET k a" 0. 3. (ok "OK");
      ent ~client:1 1 "SET k b" 1. 2. (ok "OK");
      ent 2 "GET k" 4. 5. (ok winner);
    ]
  in
  check_lin "concurrent writes: order a-last accepted" Spec.register
    (history "a");
  check_lin "concurrent writes: order b-last accepted" Spec.register
    (history "b");
  check_nonlin "concurrent writes: phantom value rejected" Spec.register
    (history "c")

let register_partitioning () =
  (* Per-key partitioning: a cross-key interleaving that is fine key by
     key must be accepted, and the partition count must reflect it. *)
  let entries =
    [
      ent 0 "SET k a" 0. 10. (ok "OK");
      ent ~client:1 1 "SET j b" 1. 2. (ok "OK");
      ent ~client:1 2 "GET j" 3. 4. (ok "b");
      ent ~client:1 3 "GET k" 11. 12. (ok "a");
    ]
  in
  let res = Lin.check Spec.register entries in
  Alcotest.(check bool) "accepted" true (is_lin res.Lin.verdict);
  Alcotest.(check int) "two key partitions" 2 res.Lin.partitions

(* --- Fates: timeouts are optional, resolved ops are mandatory --- *)

let timeout_write_optional () =
  let base fate_b read =
    [
      ent 0 "SET k a" 0. 1. (ok "OK");
      ent ~client:1 1 "SET k b" 2. 3. fate_b;
      ent 2 "GET k" 4. 5. (ok read);
    ]
  in
  (* A timed-out write may have executed... *)
  check_lin "timed-out write linearized" Spec.register
    (base H.Timed_out "b");
  (* ...or not. *)
  check_lin "timed-out write omitted" Spec.register (base H.Timed_out "a");
  (* But a *returned* write is not optional. *)
  check_nonlin "returned write cannot be omitted" Spec.register
    (base (ok "OK") "a");
  (* A resolved write has return +∞, so it may linearize after the read
     — "read missed it" stays accepted (it executed, just later). *)
  check_lin "resolved write may linearize past the read" Spec.register
    (base (H.Resolved "OK") "a")

let resolved_response_constrains () =
  (* Two resolved INCs both claiming response "1": they both must
     linearize, but the counter can only produce "1" once. *)
  check_nonlin "conflicting resolved responses rejected" Spec.counter
    [
      ent 0 "INC a" 0. infinity (H.Resolved "1");
      ent ~client:1 1 "INC b" 0. infinity (H.Resolved "1");
    ];
  check_lin "consistent resolved responses accepted" Spec.counter
    [
      ent 0 "INC a" 0. infinity (H.Resolved "1");
      ent ~client:1 1 "INC b" 0. infinity (H.Resolved "2");
    ]

let ambiguous_read_dropped () =
  let res =
    Lin.check Spec.register
      [
        ent 0 "SET k a" 0. 1. (ok "OK");
        ent 1 "GET k" 2. infinity H.Timed_out;
      ]
  in
  Alcotest.(check bool) "accepted" true (is_lin res.Lin.verdict);
  Alcotest.(check int) "read dropped" 1 res.Lin.dropped_ambiguous_reads

(* --- Counter spec --- *)

let counter_histories () =
  let inc id client tag lo hi resp =
    ent ~client id (Printf.sprintf "INC %s" tag) lo hi (ok resp)
  in
  check_lin "concurrent INCs forming a permutation accepted" Spec.counter
    [
      inc 0 0 "a" 0. 10. "2";
      inc 1 1 "b" 0. 10. "3";
      inc 2 2 "c" 0. 10. "1";
      ent 3 "GET" 11. 12. (ok "3");
    ];
  check_nonlin "INC response gap rejected" Spec.counter
    [ inc 0 0 "a" 0. 1. "1"; inc 1 0 "b" 2. 3. "3" ];
  check_nonlin "duplicate INC response rejected" Spec.counter
    [ inc 0 0 "a" 0. 10. "1"; inc 1 1 "b" 0. 10. "1" ];
  check_nonlin "final read below commit count rejected" Spec.counter
    [ inc 0 0 "a" 0. 1. "1"; inc 1 0 "b" 2. 3. "2"; ent 2 "GET" 4. 5. (ok "1") ]

(* --- Generated histories (qcheck) --- *)

let keys = [| "k0"; "k1"; "k2" |]

let op_gen =
  QCheck.Gen.(
    map2
      (fun k c ->
        let key = keys.(k) in
        match c with
        | 0 -> Printf.sprintf "GET %s" key
        | 1 -> Printf.sprintf "DEL %s" key
        | n -> Printf.sprintf "SET %s v%d" key n)
      (int_bound 2) (int_bound 6))

(* Apply requests sequentially through the spec itself; the resulting
   strictly-sequential history is linearizable by construction. *)
let sequential_history ops =
  let state = Hashtbl.create 8 in
  List.mapi
    (fun i req ->
      let key = Option.get (Spec.register.Spec.key_of req) in
      let st =
        Option.value (Hashtbl.find_opt state key)
          ~default:Spec.register.Spec.init
      in
      let st', resp = Option.get (Spec.register.Spec.apply st req) in
      Hashtbl.replace state key st';
      let t = float_of_int (2 * i) in
      ent i req t (t +. 1.) (ok resp))
    ops

let prop_sequential_accepted =
  QCheck.Test.make ~name:"sequential spec-generated histories linearizable"
    ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 12) (QCheck.make op_gen))
    (fun ops -> is_lin (verdict_of Spec.register (sequential_history ops)))

let prop_mutation_rejected =
  (* In a strictly sequential history every response is uniquely
     determined, so corrupting any one response to a different string
     must be caught. *)
  QCheck.Test.make ~name:"corrupted response caught" ~count:100
    QCheck.(
      pair
        (list_of_size (QCheck.Gen.int_range 1 10) (QCheck.make op_gen))
        (int_range 0 1000))
    (fun (ops, pick) ->
      let entries = sequential_history ops in
      let n = List.length entries in
      let victim = pick mod n in
      let mutated =
        List.map
          (fun e ->
            if e.H.id = victim then { e with H.fate = ok "CORRUPT" } else e)
          entries
      in
      is_nonlin (verdict_of Spec.register mutated))

let prop_counter_permutation =
  QCheck.Test.make
    ~name:"concurrent INCs: permutation accepted, duplicate rejected"
    ~count:60
    QCheck.(int_range 1 6)
    (fun n ->
      let entries resp_of =
        List.init n (fun i ->
            ent ~client:i i (Printf.sprintf "INC %d" i) 0. 100.
              (ok (string_of_int (resp_of i))))
      in
      (* any rotation of 1..n is a valid permutation *)
      let rot i = 1 + ((i + 1) mod n) in
      let good = is_lin (verdict_of Spec.counter (entries rot)) in
      let bad =
        n < 2
        || is_nonlin
             (verdict_of Spec.counter (entries (fun i -> 1 + min i (n - 2))))
      in
      good && bad)

(* --- Runner: determinism and shrinking --- *)

let small ?(dedup_off = false) ?(app = Runner.Kv) ~nemesis ~seed () =
  Runner.default_config ~clients:2 ~ops_per_client:4 ~dedup_off ~app
    ~stack:Runner.Rex ~nemesis ~seed ()

let replay_deterministic () =
  let cfg = small ~nemesis:N.Mixed ~seed:2024 () in
  let a = (Runner.run_one cfg).Runner.history_lines in
  let b = (Runner.run_one cfg).Runner.history_lines in
  Alcotest.(check (list string)) "same seed, byte-identical history" a b

let shrink_preserves_failure () =
  (* The dedup-off canary fails under message loss; shrinking must keep
     it failing and never grow the schedule. *)
  let cfg =
    Runner.default_config ~clients:3 ~ops_per_client:8 ~dedup_off:true
      ~app:Runner.Counter ~stack:Runner.Rex ~nemesis:N.Drops ~seed:1001 ()
  in
  let o = Runner.run_one cfg in
  Alcotest.(check bool) "canary fails before shrinking" false
    (Runner.passed o);
  let sched, o' = Runner.shrink cfg o.Runner.schedule o in
  Alcotest.(check bool) "still failing after shrinking" false
    (Runner.passed o');
  Alcotest.(check bool) "schedule did not grow" true
    (List.length sched.N.faults
    <= List.length o.Runner.schedule.N.faults);
  Alcotest.(check bool) "reproducer within 3 faults" true
    (List.length sched.N.faults <= 3)

let clean_run_passes () =
  (* A fault-free schedule over a correct stack must pass: guards
     against the harness itself flagging healthy runs. *)
  let cfg = small ~nemesis:N.Partitions ~seed:2025 () in
  let schedule = { N.horizon = cfg.Runner.horizon; faults = [] } in
  let o = Runner.run_one ~schedule cfg in
  Alcotest.(check bool) "no-fault run passes" true (Runner.passed o)

(* --- Pinned regressions: PR 4's liveness bugs, replayed through the
   nemesis so the exact scenarios stay covered. --- *)

let crash ~at node = { N.kind = N.Crash node; at; dur = 0.6 }

(* Bug 1: random fault schedule (seed 392, victims [1;2;2]) — a replica
   crashed and restarted twice in a row stalled on rejoin and the
   cluster never reconverged.  Same victim sequence, via the nemesis. *)
let regression_rejoin_stall () =
  let cfg =
    Runner.default_config ~clients:2 ~ops_per_client:6
      ~checkpoint_interval:(Some 0.3) ~stack:Runner.Rex ~app:Runner.Kv
      ~nemesis:N.Crashes ~seed:392 ()
  in
  let schedule =
    {
      N.horizon = cfg.Runner.horizon;
      faults = [ crash ~at:0.4 1; crash ~at:1.4 2; crash ~at:2.4 2 ];
    }
  in
  let o = Runner.run_one ~schedule cfg in
  Alcotest.(check bool) "double crash/restart of one replica converges" true
    (Runner.passed o)

(* Bug 2: an Accept lost under message drops wedged the group — the
   leader never re-proposed and post-heal requests hung forever.  Heavy
   loss followed by a leader kill, then the liveness probe must land. *)
let regression_dropped_accept_wedge () =
  let cfg =
    Runner.default_config ~clients:2 ~ops_per_client:6 ~stack:Runner.Rex
      ~app:Runner.Counter ~nemesis:N.Drops ~seed:392 ()
  in
  let schedule =
    {
      N.horizon = cfg.Runner.horizon;
      faults =
        [
          { N.kind = N.Drop 0.35; at = 0.3; dur = 1.0 };
          { N.kind = N.Kill_leader; at = 1.8; dur = 0.6 };
        ];
    }
  in
  let o = Runner.run_one ~schedule cfg in
  Alcotest.(check bool) "group stays live after drops + leader kill" true
    (Runner.passed o)

(* --- Topology nemeses: reconfig / split / upgrade under traffic --- *)

let topo_cfg ?(app = Runner.Kv) ~stack ~nemesis ~seed () =
  Runner.default_config ~clients:2 ~ops_per_client:6 ~stack ~app ~nemesis
    ~seed ()

let reconfig_nemesis_rex () =
  let o = Runner.run_one (topo_cfg ~stack:Runner.Rex ~nemesis:N.Reconfigs ~seed:71 ()) in
  Alcotest.(check bool) "replica replacement under traffic passes" true
    (Runner.passed o)

let reconfig_nemesis_sharded () =
  let o =
    Runner.run_one (topo_cfg ~stack:Runner.Sharded ~nemesis:N.Reconfigs ~seed:72 ())
  in
  Alcotest.(check bool) "group reconfig in a fleet passes" true
    (Runner.passed o)

let split_nemesis_sharded () =
  let o =
    Runner.run_one (topo_cfg ~stack:Runner.Sharded ~nemesis:N.Splits ~seed:73 ())
  in
  Alcotest.(check bool) "live split+merge under traffic passes" true
    (Runner.passed o)

let upgrade_nemesis_all_stacks () =
  (* The rolling restart rides the same-store replay path on the stacks
     without checkpoint recovery; Rex recovers from disk. *)
  List.iter
    (fun stack ->
      let o =
        Runner.run_one (topo_cfg ~stack ~nemesis:N.Upgrades ~seed:74 ())
      in
      Alcotest.(check bool)
        (Runner.stack_name stack ^ ": rolling upgrade passes")
        true (Runner.passed o))
    [ Runner.Rex; Runner.Smr; Runner.Eve; Runner.Cbase; Runner.Early;
      Runner.Sharded ]

let topo_noop_without_hooks () =
  (* A split profile on an unsharded stack must degrade to a clean run,
     so `--nemesis all` stays runnable everywhere. *)
  let o = Runner.run_one (topo_cfg ~stack:Runner.Smr ~nemesis:N.Splits ~seed:75 ()) in
  Alcotest.(check bool) "split profile no-ops on smr" true (Runner.passed o)

let suite =
  [
    Alcotest.test_case "register: sequential" `Quick register_sequential;
    Alcotest.test_case "register: stale read" `Quick register_stale_read;
    Alcotest.test_case "register: concurrent writes" `Quick
      register_concurrent_writes;
    Alcotest.test_case "register: per-key partitioning" `Quick
      register_partitioning;
    Alcotest.test_case "fates: timeout optional" `Quick timeout_write_optional;
    Alcotest.test_case "fates: resolved constrains" `Quick
      resolved_response_constrains;
    Alcotest.test_case "fates: ambiguous read dropped" `Quick
      ambiguous_read_dropped;
    Alcotest.test_case "counter histories" `Quick counter_histories;
    QCheck_alcotest.to_alcotest prop_sequential_accepted;
    QCheck_alcotest.to_alcotest prop_mutation_rejected;
    QCheck_alcotest.to_alcotest prop_counter_permutation;
    Alcotest.test_case "runner: deterministic replay" `Quick
      replay_deterministic;
    Alcotest.test_case "runner: clean run passes" `Quick clean_run_passes;
    Alcotest.test_case "runner: shrink preserves failure" `Quick
      shrink_preserves_failure;
    Alcotest.test_case "regression: rejoin stall (seed 392)" `Quick
      regression_rejoin_stall;
    Alcotest.test_case "regression: dropped-Accept wedge" `Quick
      regression_dropped_accept_wedge;
    Alcotest.test_case "nemesis: reconfig on rex" `Quick reconfig_nemesis_rex;
    Alcotest.test_case "nemesis: reconfig on shard" `Quick
      reconfig_nemesis_sharded;
    Alcotest.test_case "nemesis: split+merge on shard" `Quick
      split_nemesis_sharded;
    Alcotest.test_case "nemesis: rolling upgrade on every stack" `Quick
      upgrade_nemesis_all_stacks;
    Alcotest.test_case "nemesis: topology no-op without hooks" `Quick
      topo_noop_without_hooks;
  ]
