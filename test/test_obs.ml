(* lib/obs: histogram bucket/quantile math, registry keying, span
   collection, exporter well-formedness — plus a qcheck property pinning
   the documented quantile upper-bound guarantee, and a full-stack check
   that a replicated lock-server run surfaces its record/replay counters
   through the registry and exports a parseable Chrome trace. *)

open Sim
module R = Rex_core

(* --- A minimal JSON validity checker (no JSON library in the image).
   Parses the full grammar but builds nothing; [check_json] raises
   [Failure] on malformed input. *)

let check_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = failwith (Printf.sprintf "json: %s at %d" msg !pos) in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal w =
    String.iter expect w
  in
  let string_ () =
    expect '"';
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
          advance ();
          go ()
        | Some 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
            | _ -> fail "bad \\u escape"
          done;
          go ()
        | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "control char in string"
      | Some _ ->
        advance ();
        go ()
    in
    go ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let got = ref false in
      let rec go () =
        match peek () with
        | Some '0' .. '9' ->
          got := true;
          advance ();
          go ()
        | _ -> ()
      in
      go ();
      if not !got then fail "expected digit"
    in
    digits ();
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    (match peek () with
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          string_ ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected , or }"
        in
        members ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else
        let rec elements () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements ()
          | Some ']' -> advance ()
          | _ -> fail "expected , or ]"
        in
        elements ()
    | Some '"' -> string_ ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | _ -> fail "expected value");
    skip_ws ()
  in
  value ();
  if !pos <> n then fail "trailing garbage"

let contains_sub s sub =
  let ls = String.length s and lu = String.length sub in
  let rec go i = i + lu <= ls && (String.sub s i lu = sub || go (i + 1)) in
  go 0

(* --- Histogram --- *)

let test_histogram_basics () =
  let h = Obs.Histogram.create () in
  Alcotest.(check int) "empty count" 0 (Obs.Histogram.count h);
  Alcotest.(check (float 0.)) "empty quantile" 0. (Obs.Histogram.p99 h);
  List.iter (Obs.Histogram.observe h) [ 1e-3; 2e-3; 3e-3; 4e-3 ];
  Alcotest.(check int) "count" 4 (Obs.Histogram.count h);
  Alcotest.(check (float 1e-12)) "min" 1e-3 (Obs.Histogram.min_seen h);
  Alcotest.(check (float 1e-12)) "max" 4e-3 (Obs.Histogram.max_seen h);
  Alcotest.(check (float 1e-12)) "mean" 2.5e-3 (Obs.Histogram.mean h);
  (* p50's rank-2 sample is 2e-3; the answer may overshoot by at most one
     bucket's growth factor. *)
  let p50 = Obs.Histogram.p50 h in
  Alcotest.(check bool) "p50 >= true" true (p50 >= 2e-3);
  Alcotest.(check bool) "p50 within growth" true (p50 <= 2e-3 *. 1.19);
  (* quantiles are monotone and capped by the recorded max *)
  let prev = ref 0. in
  for i = 0 to 10 do
    let q = Obs.Histogram.quantile h (float_of_int i /. 10.) in
    Alcotest.(check bool) "monotone" true (q >= !prev);
    prev := q
  done;
  Alcotest.(check bool) "q(1) <= max" true (!prev <= Obs.Histogram.max_seen h);
  Obs.Histogram.reset h;
  Alcotest.(check int) "reset" 0 (Obs.Histogram.count h)

let test_histogram_million () =
  (* Percentile accuracy at open-loop scale: 10^6 samples from a known
     uniform population, every quantile within one bucket growth factor
     of the exact order statistic. *)
  let h = Obs.Histogram.create () in
  let rng = Sim.Rng.create 99 in
  let n = 1_000_000 in
  for _ = 1 to n do
    (* uniform in [1ms, 1s): exact quantile q is 1e-3 + q * (1 - 1e-3) *)
    Obs.Histogram.observe h (1e-3 +. Sim.Rng.float rng 0.999)
  done;
  Alcotest.(check int) "count" n (Obs.Histogram.count h);
  List.iter
    (fun q ->
      let exact = 1e-3 +. (q *. 0.999) in
      let est = Obs.Histogram.quantile h q in
      Alcotest.(check bool)
        (Printf.sprintf "q%.3f: %.4f ~ %.4f" q est exact)
        true
        (est >= exact *. 0.9 && est <= exact *. 1.2))
    [ 0.5; 0.9; 0.99; 0.999 ]

let test_histogram_merge_commutes () =
  (* Merging per-caller histograms then querying equals having observed
     the union into one histogram — what makes fleet-wide percentiles
     from sharded recorders sound. *)
  let rng = Sim.Rng.create 7 in
  let union = Obs.Histogram.create () in
  let parts = Array.init 4 (fun _ -> Obs.Histogram.create ()) in
  for i = 0 to 9_999 do
    let v = 1e-4 *. float_of_int (1 + Sim.Rng.int rng 100_000) in
    Obs.Histogram.observe union v;
    Obs.Histogram.observe parts.(i mod 4) v
  done;
  let merged = Obs.Histogram.create () in
  (* merge in a scrambled order: the result must not care *)
  List.iter (fun i -> Obs.Histogram.merge merged parts.(i)) [ 2; 0; 3; 1 ];
  Alcotest.(check int) "count" (Obs.Histogram.count union)
    (Obs.Histogram.count merged);
  Alcotest.(check (float 1e-9)) "sum" (Obs.Histogram.sum union)
    (Obs.Histogram.sum merged);
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "quantile %.3f identical" q)
        (Obs.Histogram.quantile union q)
        (Obs.Histogram.quantile merged q))
    [ 0.; 0.1; 0.5; 0.9; 0.99; 0.999; 1. ]

let test_histogram_clamping () =
  (* A tiny 4-bucket table: outliers land in the last bucket, where the
     only sound upper bound is the recorded max. *)
  let h = Obs.Histogram.create ~min_value:1.0 ~growth:2.0 ~buckets:4 () in
  Obs.Histogram.observe h 0.5;
  (* below min_value: first bucket *)
  Obs.Histogram.observe h 1000.;
  (* beyond the top bound (16.): clamped *)
  Alcotest.(check int) "count includes clamped" 2 (Obs.Histogram.count h);
  Alcotest.(check (float 0.)) "q(1) is max_seen" 1000.
    (Obs.Histogram.quantile h 1.0);
  (* non-finite samples count but never distort max/sum *)
  Obs.Histogram.observe h Float.nan;
  Alcotest.(check int) "nan counted" 3 (Obs.Histogram.count h);
  Alcotest.(check (float 0.)) "nan ignored in sum" 1000.5 (Obs.Histogram.sum h);
  let buckets =
    Obs.Histogram.fold_buckets h ~init:0 ~f:(fun acc ~lo:_ ~hi:_ _ -> acc + 1)
  in
  Alcotest.(check int) "two non-empty buckets" 2 buckets

let qcheck_quantile_bound =
  let growth = 1.189207115002721 in
  let gen =
    QCheck.make
      ~print:(fun (l, q) ->
        Printf.sprintf "q=%g samples=[%s]" q
          (String.concat ";" (List.map string_of_float l)))
      QCheck.Gen.(
        pair
          (list_size (int_range 1 200) (float_range 1e-8 1e5))
          (float_range 0. 1.))
  in
  QCheck.Test.make ~name:"recorded quantile bounds true quantile" ~count:300
    gen
    (fun (samples, q) ->
      let h = Obs.Histogram.create () in
      List.iter (Obs.Histogram.observe h) samples;
      let sorted = List.sort compare samples in
      let n = List.length sorted in
      let rank =
        max 1 (int_of_float (Float.ceil (q *. float_of_int n)))
      in
      let true_q = List.nth sorted (rank - 1) in
      let rec_q = Obs.Histogram.quantile h q in
      rec_q >= true_q *. (1. -. 1e-9)
      && rec_q <= growth *. true_q *. (1. +. 1e-9))

(* --- Registry --- *)

let test_registry_labels () =
  let reg = Obs.Registry.create () in
  let a =
    Obs.Registry.counter reg ~subsystem:"s"
      ~labels:[ ("node", "0"); ("role", "x") ]
      "c"
  in
  let b =
    Obs.Registry.counter reg ~subsystem:"s"
      ~labels:[ ("role", "x"); ("node", "0") ]
      "c"
  in
  Obs.Metric.incr a;
  Obs.Metric.incr b;
  Alcotest.(check int) "label order merges" 2 (Obs.Metric.value a);
  Alcotest.(check int) "one instrument" 1 (Obs.Registry.cardinality reg);
  (* duplicate label keys: last binding wins *)
  let c =
    Obs.Registry.counter reg ~subsystem:"s"
      ~labels:[ ("node", "9"); ("node", "0"); ("role", "x") ]
      "c"
  in
  Obs.Metric.incr c;
  Alcotest.(check int) "dup key last wins" 3 (Obs.Metric.value a);
  (* same key, different kind: a programming error *)
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument "Obs.Registry: s/c already registered as a counter")
    (fun () ->
      ignore
        (Obs.Registry.gauge reg ~subsystem:"s"
           ~labels:[ ("node", "0"); ("role", "x") ]
           "c"));
  (* find sees through canonicalization *)
  (match
     Obs.Registry.find reg ~subsystem:"s"
       ~labels:[ ("role", "x"); ("node", "0") ]
       "c"
   with
  | Some (Obs.Registry.Counter c') ->
    Alcotest.(check int) "find" 3 (Obs.Metric.value c')
  | _ -> Alcotest.fail "find missed the counter");
  (* fold is sorted and complete *)
  ignore (Obs.Registry.gauge reg ~subsystem:"a" "g");
  let keys =
    Obs.Registry.fold reg ~init:[] ~f:(fun acc k _ ->
        (k.Obs.Registry.subsystem ^ "/" ^ k.Obs.Registry.name) :: acc)
    |> List.rev
  in
  Alcotest.(check (list string)) "fold sorted" [ "a/g"; "s/c" ] keys

(* --- Spans --- *)

let test_spans () =
  let clock = ref 0. in
  let col = Obs.Span.create ~clock:(fun () -> !clock) () in
  (* disabled: everything is a no-op *)
  let sp = Obs.Span.start col "ignored" in
  Obs.Span.finish sp;
  Obs.Span.complete col ~name:"ignored" ~ts:0. ~dur:1. ();
  Alcotest.(check int) "disabled collects nothing" 0 (Obs.Span.length col);
  Obs.Span.set_enabled col true;
  let sp = Obs.Span.start col ~cat:"t" ~pid:1 ~tid:2 "op" in
  Obs.Span.annotate sp "k" "v";
  clock := 3.5;
  Obs.Span.finish sp;
  Obs.Span.finish sp;
  (* idempotent *)
  Obs.Span.instant col ~pid:1 "marker";
  (match Obs.Span.events col with
  | [ e1; e2 ] ->
    Alcotest.(check string) "name" "op" e1.Obs.Span.ev_name;
    Alcotest.(check (float 1e-9)) "dur" 3.5 e1.Obs.Span.ev_dur;
    Alcotest.(check bool) "args kept" true
      (List.mem ("k", "v") e1.Obs.Span.ev_args);
    Alcotest.(check bool) "instant" true e2.Obs.Span.ev_instant
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  (* the cap converts overflow into a drop count, not unbounded memory *)
  let tiny = Obs.Span.create ~limit:2 () in
  Obs.Span.set_enabled tiny true;
  for _ = 1 to 5 do
    Obs.Span.complete tiny ~name:"x" ~ts:0. ~dur:0. ()
  done;
  Alcotest.(check int) "capped" 2 (Obs.Span.length tiny);
  Alcotest.(check int) "dropped" 3 (Obs.Span.dropped tiny)

(* --- Exporters --- *)

let test_export_well_formed () =
  let obs = Obs.create () in
  let c = Obs.counter obs ~subsystem:"s" ~labels:[ ("node", "0") ] "c" in
  Obs.Metric.add c 42;
  let g = Obs.gauge obs ~subsystem:"s" "g\"quoted\\name" in
  Obs.Metric.set g 1.5;
  let h = Obs.histogram obs ~subsystem:"s" "h" in
  List.iter (Obs.Histogram.observe h) [ 1e-4; 2e-4; 0.5 ];
  check_json (Obs.Export.metrics_json (Obs.registry obs));
  String.split_on_char '\n' (Obs.Export.metrics_jsonl (Obs.registry obs))
  |> List.iter (fun line -> if line <> "" then check_json line);
  Obs.enable_tracing obs true;
  Obs.Span.complete (Obs.spans obs) ~cat:"c" ~pid:0 ~tid:1
    ~args:[ ("weird", "a\"b\\c\nd") ]
    ~name:"sp" ~ts:1e-3 ~dur:2e-3 ();
  Obs.Span.instant (Obs.spans obs) ~pid:1 "mark";
  check_json (Obs.Export.chrome_trace (Obs.spans obs));
  let table = Obs.Export.table (Obs.registry obs) in
  Alcotest.(check bool) "table mentions counter" true
    (contains_sub table "42")

(* --- Timeline: windowed req/s + latency with event marks --- *)

let test_timeline () =
  Alcotest.check_raises "bucket must be positive"
    (Invalid_argument "Obs.Timeline.create: bucket must be > 0") (fun () ->
      ignore (Obs.Timeline.create ~bucket:0. ()));
  let tl = Obs.Timeline.create ~bucket:0.5 () in
  Alcotest.(check int) "empty timeline has no rows" 0
    (List.length (Obs.Timeline.rows tl));
  (* three completions in bucket [1.0,1.5), one in [3.0,3.5): the gap
     must appear as zero rows, not vanish *)
  Obs.Timeline.record tl ~latency:0.010 1.1;
  Obs.Timeline.record tl ~latency:0.030 1.2;
  Obs.Timeline.record tl 1.4;
  Obs.Timeline.record tl ~latency:0.002 3.2;
  Obs.Timeline.mark tl 2.1 "failover";
  let rows = Obs.Timeline.rows tl in
  Alcotest.(check int) "contiguous rows across the gap" 5 (List.length rows);
  let r0 = List.nth rows 0 in
  Alcotest.(check (float 1e-9)) "first window start" 1.0 r0.Obs.Timeline.t0;
  Alcotest.(check int) "count" 3 r0.Obs.Timeline.n;
  Alcotest.(check (float 1e-9)) "rate = n / bucket" 6.0 r0.Obs.Timeline.rate;
  Alcotest.(check (float 1e-9)) "mean over recorded latencies only" 0.020
    r0.Obs.Timeline.lat_mean;
  Alcotest.(check (float 1e-9)) "max latency" 0.030 r0.Obs.Timeline.lat_max;
  let r2 = List.nth rows 2 in
  Alcotest.(check int) "gap row is zero" 0 r2.Obs.Timeline.n;
  Alcotest.(check (list string)) "mark lands in its window" [ "failover" ]
    (List.nth rows 2).Obs.Timeline.row_marks;
  let csv = Obs.Timeline.to_csv tl in
  Alcotest.(check bool) "csv header" true
    (Astring.String.is_prefix ~affix:"t,requests,req_per_s,lat_mean" csv);
  Alcotest.(check int) "csv has header + one line per row" 6
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)));
  Alcotest.(check bool) "csv carries the mark" true
    (contains_sub csv "failover")

(* --- Full stack: a replicated lock server exports real numbers --- *)

let test_cluster_observability () =
  let cfg = R.Config.make ~workers:4 ~replicas:[ 0; 1; 2 ] () in
  let cluster = R.Cluster.create ~seed:11 cfg (Apps.Lock_server.factory ()) in
  let eng = R.Cluster.engine cluster in
  let obs = Engine.obs eng in
  Obs.enable_tracing obs true;
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let gen = Workload.Mix.lock_server ~n_files:100 in
  let rng = Rng.create 5 in
  let completed = ref 0 and launched = ref 0 in
  let n = 400 in
  let rec submit_one () =
    if !launched < n then begin
      incr launched;
      R.Server.submit primary (gen rng) (fun _ ->
          incr completed;
          submit_one ())
    end
  in
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         for _ = 1 to 32 do
           submit_one ()
         done));
  let deadline = Engine.clock eng +. 60. in
  let rec pump () =
    Engine.run ~until:(Engine.clock eng +. 0.25) eng;
    if !completed < n && Engine.clock eng < deadline then pump ()
  in
  pump ();
  R.Cluster.run_for cluster 0.5;
  let counter_value ~subsystem ~node name =
    match
      Obs.Registry.find (Obs.registry obs) ~subsystem
        ~labels:[ ("node", string_of_int node) ]
        name
    with
    | Some (Obs.Registry.Counter c) -> Obs.Metric.value c
    | _ -> -1
  in
  let pnode = R.Server.node primary in
  let snode =
    List.find (fun i -> i <> pnode) [ 0; 1; 2 ]
  in
  Alcotest.(check bool) "primary recorded events" true
    (counter_value ~subsystem:"rexsync" ~node:pnode "events_recorded" > 0);
  Alcotest.(check bool) "secondary replayed events" true
    (counter_value ~subsystem:"rexsync" ~node:snode "events_replayed" > 0);
  Alcotest.(check bool) "requests counted" true
    (counter_value ~subsystem:"rex" ~node:pnode "requests_executed" >= n);
  (* the registry view and the legacy stats accessors agree *)
  let st = R.Server.stats primary in
  Alcotest.(check int) "stats view consistent"
    st.R.Server.requests_executed
    (counter_value ~subsystem:"rex" ~node:pnode "requests_executed");
  let rt = R.Server.runtime_stats primary in
  Alcotest.(check int) "runtime stats view consistent"
    rt.Rexsync.Runtime.events_recorded
    (counter_value ~subsystem:"rexsync" ~node:pnode "events_recorded");
  (* paxos committed at least one instance, with a sane latency histogram *)
  (match
     Obs.Registry.find (Obs.registry obs) ~subsystem:"paxos"
       ~labels:[ ("node", string_of_int pnode) ]
       "commit_latency"
   with
  | Some (Obs.Registry.Histogram h) ->
    Alcotest.(check bool) "commits observed" true (Obs.Histogram.count h > 0);
    Alcotest.(check bool) "p50 <= p99" true
      (Obs.Histogram.p50 h <= Obs.Histogram.p99 h)
  | _ -> Alcotest.fail "no commit_latency histogram");
  (* spans were collected and export as well-formed Chrome JSON *)
  Alcotest.(check bool) "spans collected" true
    (Obs.Span.length (Obs.spans obs) > 0);
  let trace = Obs.Export.chrome_trace (Obs.spans obs) in
  check_json trace;
  Alcotest.(check bool) "trace has events" true
    (Astring.String.is_infix ~affix:"\"ph\":\"X\"" trace)

let suite =
  [
    Alcotest.test_case "histogram basics" `Quick test_histogram_basics;
    Alcotest.test_case "histogram clamping" `Quick test_histogram_clamping;
    Alcotest.test_case "histogram percentiles at 10^6" `Quick
      test_histogram_million;
    Alcotest.test_case "histogram merge commutes" `Quick
      test_histogram_merge_commutes;
    QCheck_alcotest.to_alcotest qcheck_quantile_bound;
    Alcotest.test_case "registry labels" `Quick test_registry_labels;
    Alcotest.test_case "spans" `Quick test_spans;
    Alcotest.test_case "exporters well-formed" `Quick test_export_well_formed;
    Alcotest.test_case "timeline windows" `Quick test_timeline;
    Alcotest.test_case "cluster observability" `Quick
      test_cluster_observability;
  ]
