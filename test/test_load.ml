(* Tests for the open-loop load engine (lib/load) and the checker that
   survives it (lib/check Window + Sample): timing-wheel ordering,
   statistical validity of the arrival and key processes (fixed seeds),
   generator determinism across pull slicings and backends, windowed-vs-
   full checker equivalence on generated histories (including seeded
   non-linearizable ones), and the sampling recorder's bounded-memory
   accounting. *)

module W = Load.Wheel
module Gen = Load.Gen
module A = Load.Arrivals
module H = Check.History
module Lin = Check.Lin
module Win = Check.Window
module Spec = Check.Spec

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- Timing wheel --- *)

let wheel_orders_timers () =
  let w = W.create ~tick:1e-3 ~now:0. () in
  let times = [ 0.5; 0.0017; 0.25; 0.0013; 3.7; 0.25; 1.0 ] in
  List.iteri (fun i at -> W.add w ~at (i, at)) times;
  check_int "length" (List.length times) (W.length w);
  let fired = ref [] in
  let n = W.pop_until w ~now:10. (fun _due v -> fired := v :: !fired) in
  check_int "all fired" (List.length times) n;
  check_int "drained" 0 (W.length w);
  let fired = List.rev !fired in
  (* due-time order, ties by insertion order *)
  let expect =
    List.stable_sort
      (fun (_, a) (_, b) -> compare a b)
      (List.mapi (fun i at -> (i, at)) times)
  in
  Alcotest.(check (list (pair int (float 0.))))
    "time order, ties stable" expect fired

let wheel_pop_until_partial () =
  let w = W.create ~tick:1e-3 ~now:0. () in
  List.iter (fun at -> W.add w ~at at) [ 0.1; 0.2; 0.3; 0.4 ];
  let fired = ref [] in
  let n1 = W.pop_until w ~now:0.25 (fun _ v -> fired := v :: !fired) in
  check_int "first slice" 2 n1;
  (match W.next_due w with
  | None -> Alcotest.fail "next_due empty with timers pending"
  | Some d -> check_bool "next_due never over-estimates" true (d <= 0.3));
  let n2 = W.pop_until w ~now:10. (fun _ v -> fired := v :: !fired) in
  check_int "second slice" 2 n2;
  Alcotest.(check (list (float 0.)))
    "order across slices" [ 0.1; 0.2; 0.3; 0.4 ] (List.rev !fired)

let wheel_rearm_during_pop () =
  (* A callback re-arming its own next timer (the session pattern) fires
     again within the same pop when due inside the window. *)
  let w = W.create ~tick:1e-3 ~now:0. () in
  let count = ref 0 in
  let rec arm at =
    W.add w ~at (fun due -> incr count; if due < 0.01 then arm (due +. 0.002))
  in
  arm 0.001;
  let fired = W.pop_until w ~now:1.0 (fun due f -> f due) in
  check_bool "re-armed timers fired in the same pop" true (fired >= 5);
  check_int "callback count matches" fired !count

let wheel_far_future_cascades () =
  (* Beyond the top level's span: clamped and re-cascaded, not lost. *)
  let w = W.create ~tick:1e-3 ~slots:4 ~levels:2 ~now:0. () in
  List.iter (fun at -> W.add w ~at at) [ 5.0; 0.002; 1000.0 ];
  let fired = ref [] in
  ignore (W.pop_until w ~now:2000. (fun _ v -> fired := v :: !fired));
  Alcotest.(check (list (float 0.)))
    "clamped timers survive cascade" [ 0.002; 5.0; 1000.0 ] (List.rev !fired)

let prop_wheel_sorted =
  QCheck.Test.make ~name:"wheel fires in due-time order" ~count:100
    QCheck.(list_of_size Gen.(1 -- 80) (float_range 0. 50.))
    (fun times ->
      let w = W.create ~tick:1e-2 ~now:0. () in
      List.iter (fun at -> W.add w ~at at) times;
      let fired = ref [] in
      (* pop in several slices to exercise cascading *)
      List.iter
        (fun now ->
          ignore (W.pop_until w ~now (fun _ v -> fired := v :: !fired)))
        [ 1.; 7.; 13.; 50.; 60. ];
      let fired = List.rev !fired in
      List.length fired = List.length times
      && fst
           (List.fold_left
              (fun (ok, last) v -> (ok && v >= last, v))
              (true, neg_infinity) fired))

(* --- Arrival statistics (fixed seeds: these are deterministic) --- *)

let poisson_interarrivals () =
  (* Superposed fleet arrivals at Steady λ are Poisson: merged-stream
     gaps are Exp(1/λ) — mean 1/λ, variance 1/λ². *)
  let lambda = 2000. in
  let g =
    Gen.create ~sessions:500 ~duration:10.0 ~profile:(A.Steady lambda)
      ~keys:16 ~theta:0.9 ~read_ratio:0.5 ~seed:42 ()
  in
  let times = ref [] in
  ignore (Gen.pull g ~until:10.0 (fun ev -> times := ev.Gen.at :: !times));
  let times = Array.of_list (List.rev !times) in
  let n = Array.length times in
  check_bool "enough arrivals" true (n > 15_000);
  let gaps = Array.init (n - 1) (fun i -> times.(i + 1) -. times.(i)) in
  let m = Array.length gaps in
  let mean = Array.fold_left ( +. ) 0. gaps /. float_of_int m in
  let var =
    Array.fold_left (fun a g -> a +. ((g -. mean) *. (g -. mean))) 0. gaps
    /. float_of_int m
  in
  let expect = 1. /. lambda in
  check_bool
    (Printf.sprintf "gap mean %.6f ~ %.6f" mean expect)
    true
    (Float.abs (mean -. expect) < 0.03 *. expect);
  check_bool
    (Printf.sprintf "gap variance %.3g ~ %.3g" var (expect *. expect))
    true
    (Float.abs (var -. (expect *. expect)) < 0.1 *. expect *. expect)

let zipf_chi_square () =
  (* Observed key frequencies against the analytic pmf. *)
  let n = 64 and draws = 100_000 in
  let z = Workload.Zipf.create ~n ~theta:0.9 in
  let rng = Sim.Rng.create 7 in
  let obs = Array.make n 0 in
  for _ = 1 to draws do
    let k = Workload.Zipf.sample z rng in
    obs.(k) <- obs.(k) + 1
  done;
  let chi2 = ref 0. in
  for k = 0 to n - 1 do
    let e = float_of_int draws *. Workload.Zipf.pmf z k in
    let d = float_of_int obs.(k) -. e in
    chi2 := !chi2 +. (d *. d /. e)
  done;
  (* 63 degrees of freedom: crit(0.999) ~ 103.4.  Deterministic seed, so
     this is a regression pin as much as a statistical test. *)
  check_bool
    (Printf.sprintf "chi^2 %.1f below 103.4 (63 dof)" !chi2)
    true (!chi2 < 103.4);
  check_bool "hottest rank is rank 0" true
    (Array.for_all (fun c -> c <= obs.(0)) obs)

let ramp_rate_rises () =
  let g =
    Gen.create ~sessions:200 ~duration:4.0
      ~profile:(A.Ramp { lo = 100.; hi = 900.; over = 4.0 })
      ~keys:8 ~theta:0.5 ~read_ratio:0.5 ~seed:9 ()
  in
  let early = ref 0 and late = ref 0 in
  ignore
    (Gen.pull g ~until:4.0 (fun ev ->
         if ev.Gen.at < 2.0 then incr early else incr late));
  check_bool
    (Printf.sprintf "ramp back-half (%d) >> front-half (%d)" !late !early)
    true
    (!late > 2 * !early)

(* --- Generator determinism --- *)

let ev_tuple (e : Gen.ev) = (e.Gen.at, e.Gen.session, e.Gen.seq, e.Gen.key, e.Gen.read)

let gen_slicing_invariant () =
  (* The trace must not depend on how the pulls are sliced. *)
  let mk () =
    Gen.create ~sessions:300 ~duration:2.0
      ~profile:(A.Burst { base = 200.; peak = 2000.; period = 0.5; duty = 0.3 })
      ~keys:32 ~theta:0.99 ~read_ratio:0.3 ~seed:123 ()
  in
  let collect steps =
    let g = mk () in
    let out = ref [] in
    let t = ref 0. in
    while !t < 2.0 do
      t := !t +. steps;
      ignore (Gen.pull g ~until:!t (fun ev -> out := ev_tuple ev :: !out))
    done;
    ignore (Gen.pull g ~until:2.0 (fun ev -> out := ev_tuple ev :: !out));
    List.rev !out
  in
  let a = collect 1e-3 and b = collect 0.37 in
  check_int "same count" (List.length a) (List.length b);
  check_bool "same trace under different slicings" true (a = b)

let engine_trace_cross_backend () =
  (* Same config, null target: the sim run and the real-domains run must
     produce byte-identical trace witnesses. *)
  let cfg =
    Load.Engine.config ~keys:64 ~trace_cap:256 ~sessions:2_000
      ~profile:(A.Steady 1200.) ~duration:0.25 ~seed:5 ()
  in
  let sim_st =
    let eng = Sim.Engine.create ~seed:5 ~num_nodes:2 () in
    let result = ref None in
    ignore
      (Sim.Engine.spawn eng ~node:0 ~name:"load" (fun () ->
           result :=
             Some
               (Load.Engine.run (Par.Backend.of_sim eng) ~node:0
                  ~target:Load.Engine.null_target cfg)));
    Sim.Engine.run ~until:30.0 eng;
    Option.get !result
  in
  let dom_st =
    let d = Par.Domains.create ~seed:5 () in
    Fun.protect
      ~finally:(fun () -> Par.Domains.shutdown d)
      (fun () ->
        let result = Atomic.make None in
        Par.Domains.spawn d ~node:0 (fun () ->
            Atomic.set result
              (Some
                 (Load.Engine.run (Par.Domains.backend d) ~node:0
                    ~target:Load.Engine.null_target cfg)));
        Par.Domains.join d;
        Option.get (Atomic.get result))
  in
  check_int "same generated" sim_st.Load.Engine.generated
    dom_st.Load.Engine.generated;
  check_bool "identical trace witness" true
    (sim_st.Load.Engine.trace = dom_st.Load.Engine.trace);
  check_int "accounting: sim" sim_st.Load.Engine.generated
    (sim_st.Load.Engine.admitted + sim_st.Load.Engine.shed_session
   + sim_st.Load.Engine.shed_queue);
  check_int "all ok on null target" dom_st.Load.Engine.admitted
    dom_st.Load.Engine.ok

(* --- Windowed checker vs the full checker --- *)

let ent id client request invoke return_ fate =
  { H.id; client; request; invoke; return_; fate }

(* Generate a small register history: choose linearization points inside
   each op's interval and derive responses (linearizable by
   construction), then sometimes corrupt one response.  The windowed
   verdict must match the full checker's on every draw. *)
let random_history rng =
  let n = 2 + Sim.Rng.int rng 10 in
  let vals = [| "a"; "b"; "c" |] in
  let ops =
    Array.init n (fun i ->
        let inv = Sim.Rng.float rng 10.0 in
        let dur = 0.01 +. Sim.Rng.float rng 2.0 in
        let lp = inv +. Sim.Rng.float rng dur in
        let req =
          if Sim.Rng.bool rng then "GET k"
          else if Sim.Rng.int rng 4 = 0 then "DEL k"
          else "SET k " ^ vals.(Sim.Rng.int rng 3)
        in
        (i, req, inv, inv +. dur, lp))
  in
  let by_lp = Array.copy ops in
  Array.sort (fun (_, _, _, _, a) (_, _, _, _, b) -> compare a b) by_lp;
  let state = ref "NOTFOUND" in
  let resp = Array.make n "" in
  Array.iter
    (fun (i, req, _, _, _) ->
      match Spec.words req with
      | [ "SET"; _; v ] ->
        state := v;
        resp.(i) <- "OK"
      | [ "DEL"; _ ] ->
        state := "NOTFOUND";
        resp.(i) <- "OK"
      | _ -> resp.(i) <- !state)
    by_lp;
  (* corrupt one response half the time *)
  if Sim.Rng.bool rng then begin
    let i = Sim.Rng.int rng n in
    let (_, req, _, _, _) = ops.(i) in
    if (match Spec.words req with [ "GET"; _ ] -> true | _ -> false) then
      resp.(i) <- (if resp.(i) = "a" then "b" else "a")
  end;
  (* occasionally leave a write undecided (client gave up) *)
  Array.to_list ops
  |> List.map (fun (i, req, inv, ret, _) ->
         let timeout =
           Sim.Rng.int rng 8 = 0
           && match Spec.words req with [ "GET"; _ ] -> false | _ -> true
         in
         if timeout then ent i i req inv Float.infinity H.Timed_out
         else ent i i req inv ret (H.Returned resp.(i)))

let window_matches_lin () =
  let rng = Sim.Rng.create 4242 in
  let lin_seen = ref 0 and nonlin_seen = ref 0 in
  for _ = 1 to 300 do
    let entries = random_history rng in
    let full = (Lin.check Spec.register entries).Lin.verdict in
    let windowed = (Win.check Spec.register entries).Win.verdict in
    (match (full, windowed) with
    | Lin.Linearizable, Lin.Linearizable -> incr lin_seen
    | Lin.Non_linearizable _, Lin.Non_linearizable _ -> incr nonlin_seen
    | Lin.Limit, _ | _, Lin.Limit ->
      Alcotest.fail "budget tripped on a tiny history"
    | a, b ->
      Alcotest.failf "verdicts diverge: full=%s windowed=%s on\n%s"
        (match a with Lin.Linearizable -> "LIN" | _ -> "NONLIN")
        (match b with Lin.Linearizable -> "LIN" | _ -> "NONLIN")
        (String.concat "\n" (List.map (fun e -> e.H.request) entries)));
    ignore windowed
  done;
  check_bool
    (Printf.sprintf "exercised both verdicts (%d lin, %d nonlin)" !lin_seen
       !nonlin_seen)
    true
    (!lin_seen > 20 && !nonlin_seen > 20)

let window_seeded_nonlin () =
  (* The canonical stale read, decided across two quiescent windows. *)
  let entries =
    [
      ent 0 0 "SET k a" 0. 1. (H.Returned "OK");
      ent 1 1 "SET k b" 2. 3. (H.Returned "OK");
      ent 2 2 "GET k" 10. 11. (H.Returned "a");
    ]
  in
  let r = Win.check Spec.register entries in
  check_bool "stale read caught" true
    (match r.Win.verdict with Lin.Non_linearizable _ -> true | _ -> false);
  check_bool "took several windows" true (r.Win.windows >= 2)

let window_carries_undecided () =
  (* A timed-out write carried across a cut must be allowed to linearize
     in a later window... *)
  let entries =
    [
      ent 0 0 "SET k a" 0. 1. (H.Returned "OK");
      ent 1 1 "SET k b" 2. Float.infinity H.Timed_out;
      ent 2 2 "GET k" 10. 11. (H.Returned "b");
    ]
  in
  let r = Win.check Spec.register entries in
  check_bool "undecided write explains later read" true
    (match r.Win.verdict with Lin.Linearizable -> true | _ -> false);
  (* ...and a commit-resolved write that can never linearize must fail
     at close, exactly as in the full checker: this INC committed with
     response "1", but "1" was already taken by an INC that returned
     before it was even invoked. *)
  let entries_bad =
    [
      ent 0 0 "INC k a" 0. 1. (H.Returned "1");
      ent 1 1 "INC k b" 2. Float.infinity (H.Resolved "1");
    ]
  in
  let full = (Lin.check Spec.keyed_counter entries_bad).Lin.verdict in
  let windowed = (Win.check Spec.keyed_counter entries_bad).Win.verdict in
  check_bool "full checker rejects unconsumable resolved write" true
    (match full with Lin.Non_linearizable _ -> true | _ -> false);
  check_bool "windowed agrees" true
    (match windowed with Lin.Non_linearizable _ -> true | _ -> false)

let window_bot_pins () =
  (* From ⊥, the first pinnable response re-anchors the model. *)
  let cs = Win.make ~bot:true Spec.keyed_counter in
  let op req resp inv ret =
    { Win.o_req = req; o_resp = Some resp; o_must = true; o_inv = inv; o_ret = ret }
  in
  (match
     Win.advance Spec.keyed_counter cs
       [| op "INC k x" "5" 0. 1.; op "GET k" "5" 2. 3. |]
   with
  | Ok cs' -> (
    check_int "one config after pin" 1 (Win.cardinal cs');
    match Win.advance Spec.keyed_counter cs' [| op "GET k" "5" 4. 5. |] with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "pinned state should accept consistent read")
  | Error _ -> Alcotest.fail "pinnable window rejected from bot");
  (* a contradiction after the pin is still caught *)
  let cs = Win.make ~bot:true Spec.keyed_counter in
  match
    Win.advance Spec.keyed_counter cs
      [| op "INC k x" "5" 0. 1.; op "GET k" "9" 2. 3. |]
  with
  | Error (Win.Nonlin _) -> ()
  | Ok _ | Error (Win.Limit _) ->
    Alcotest.fail "contradiction from pinned state not caught"

(* --- Sampling recorder --- *)

let sample_sequential_ok () =
  let sm = Check.Sample.create ~seed:1 Spec.keyed_counter in
  let id1 = Check.Sample.invoke sm ~now:0. ~client:0 ~request:"INC k a" in
  Check.Sample.finish sm ~now:1. id1 (Some "1");
  let id2 = Check.Sample.invoke sm ~now:2. ~client:1 ~request:"INC k b" in
  Check.Sample.finish sm ~now:3. id2 (Some "2");
  let id3 = Check.Sample.invoke sm ~now:4. ~client:0 ~request:"GET k" in
  Check.Sample.finish sm ~now:5. id3 (Some "2");
  Check.Sample.finalize sm;
  check_bool "clean history passes" true (Check.Sample.ok sm);
  let s = Check.Sample.stats sm in
  check_int "ops recorded" 3 s.Check.Sample.recorded_ops;
  check_bool "windows advanced" true (s.Check.Sample.windows >= 1)

let sample_detects_skew () =
  let sm = Check.Sample.create ~seed:1 Spec.keyed_counter in
  let id1 = Check.Sample.invoke sm ~now:0. ~client:0 ~request:"INC k a" in
  Check.Sample.finish sm ~now:1. id1 (Some "1");
  (* counter jumps: the value "3" is unexplainable *)
  let id2 = Check.Sample.invoke sm ~now:2. ~client:1 ~request:"GET k" in
  Check.Sample.finish sm ~now:3. id2 (Some "3");
  Check.Sample.finalize sm;
  check_bool "skew flagged" true (not (Check.Sample.ok sm));
  match Check.Sample.violations sm with
  | { Check.Sample.v_kind = "non-linearizable"; _ } :: _ -> ()
  | v :: _ -> Alcotest.failf "wrong kind %s" v.Check.Sample.v_kind
  | [] -> Alcotest.fail "no violation recorded"

let sample_window_cap_reanchors () =
  (* One op stays in flight forever, so the key never quiesces; the
     buffer must hit window_cap and re-anchor at ⊥ instead of growing. *)
  let sm = Check.Sample.create ~seed:1 ~window_cap:4 Spec.keyed_counter in
  let blocker = Check.Sample.invoke sm ~now:0. ~client:99 ~request:"INC k z" in
  for i = 1 to 10 do
    let id =
      Check.Sample.invoke sm
        ~now:(float_of_int i)
        ~client:i
        ~request:(Printf.sprintf "INC k x%d" i)
    in
    Check.Sample.finish sm ~now:(float_of_int i +. 0.5) id
      (Some (string_of_int i))
  done;
  let s = Check.Sample.stats sm in
  check_bool "reanchored at least once" true (s.Check.Sample.resets >= 1);
  check_bool "memory bounded by cap" true (s.Check.Sample.max_live_ops <= 8);
  Check.Sample.finish sm ~now:20. blocker (Some "11");
  Check.Sample.finalize sm;
  check_bool "resets are not violations" true
    (Check.Sample.violations sm = [])

let sample_reservoir_bounds_keys () =
  let sm = Check.Sample.create ~seed:3 ~keys_cap:4 Spec.keyed_counter in
  for i = 0 to 19 do
    let id =
      Check.Sample.invoke sm ~now:(float_of_int i) ~client:i
        ~request:(Printf.sprintf "INC key%d a" i)
    in
    Check.Sample.finish sm ~now:(float_of_int i +. 0.1) id (Some "1")
  done;
  Check.Sample.finalize sm;
  let s = Check.Sample.stats sm in
  check_int "all keys seen" 20 s.Check.Sample.seen_keys;
  check_bool "tracked bounded" true (s.Check.Sample.tracked_keys <= 4);
  check_bool "untracked ops skipped" true (s.Check.Sample.skipped_ops > 0);
  check_bool "still ok" true (Check.Sample.ok sm)

let sample_reject_accounting () =
  let sm = Check.Sample.create ~seed:1 Spec.keyed_counter in
  let id1 = Check.Sample.invoke sm ~now:0. ~client:0 ~request:"INC k a" in
  Check.Sample.finish sm ~now:1. id1 (Some "1");
  let id2 = Check.Sample.invoke sm ~now:2. ~client:1 ~request:"INC k b" in
  Check.Sample.reject sm ~now:3. id2;
  let id3 = Check.Sample.invoke sm ~now:4. ~client:2 ~request:"GET k" in
  (* the shed INC must NOT count: 1, not 2 *)
  Check.Sample.finish sm ~now:5. id3 (Some "1");
  Check.Sample.finalize sm;
  check_bool "shed op excluded from linearization" true (Check.Sample.ok sm);
  let s = Check.Sample.stats sm in
  check_int "rejection counted" 1 s.Check.Sample.rejected_ops

let suite =
  [
    Alcotest.test_case "wheel: due-time order with ties" `Quick
      wheel_orders_timers;
    Alcotest.test_case "wheel: partial pops + next_due" `Quick
      wheel_pop_until_partial;
    Alcotest.test_case "wheel: re-arm during pop" `Quick wheel_rearm_during_pop;
    Alcotest.test_case "wheel: far-future cascade" `Quick
      wheel_far_future_cascades;
    QCheck_alcotest.to_alcotest prop_wheel_sorted;
    Alcotest.test_case "poisson interarrival mean/variance" `Quick
      poisson_interarrivals;
    Alcotest.test_case "zipf chi-square vs pmf" `Quick zipf_chi_square;
    Alcotest.test_case "ramp profile rate rises" `Quick ramp_rate_rises;
    Alcotest.test_case "gen: trace invariant under pull slicing" `Quick
      gen_slicing_invariant;
    Alcotest.test_case "engine: identical trace on sim and domains" `Quick
      engine_trace_cross_backend;
    Alcotest.test_case "window = full checker on random histories" `Quick
      window_matches_lin;
    Alcotest.test_case "window: seeded stale read caught" `Quick
      window_seeded_nonlin;
    Alcotest.test_case "window: undecided ops carried across cuts" `Quick
      window_carries_undecided;
    Alcotest.test_case "window: bot re-anchor pins state" `Quick
      window_bot_pins;
    Alcotest.test_case "sample: clean sequential history" `Quick
      sample_sequential_ok;
    Alcotest.test_case "sample: detects counter skew" `Quick
      sample_detects_skew;
    Alcotest.test_case "sample: window_cap forces bot re-anchor" `Quick
      sample_window_cap_reanchors;
    Alcotest.test_case "sample: reservoir bounds tracked keys" `Quick
      sample_reservoir_bounds_keys;
    Alcotest.test_case "sample: rejected op excluded, counted" `Quick
      sample_reject_accounting;
  ]
