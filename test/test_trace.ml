(* Tests for trace data structures: events, cuts, consistency, prefix,
   deltas and vector clocks. *)

let _astring_contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let mk_event ?(kind = Event.Acquire) ?(resource = 1) ?(version = 0)
    ?(payload = "") slot clock =
  { Event.id = { slot; clock }; kind; resource; version; payload }

let id slot clock : Event.Id.t = { slot; clock }

(* Build the two-thread example of paper Fig. 2: t0 locks/unlocks L, then
   t1 locks it; one causal edge (t0,2) -> (t1,1). *)
let fig2_trace () =
  let t = Trace.create ~slots:2 () in
  Trace.append t (mk_event 0 1 ~kind:Event.Acquire);
  Trace.append t (mk_event 0 2 ~kind:Event.Release);
  Trace.append t (mk_event 1 1 ~kind:Event.Acquire);
  Trace.append t (mk_event 1 2 ~kind:Event.Release);
  Trace.add_edge t ~src:(id 0 2) ~dst:(id 1 1);
  t

let event_roundtrip () =
  let e = mk_event 3 17 ~kind:Event.Try_fail ~resource:42 ~version:7 ~payload:"xy" in
  let e' = Codec.decode Event.read (Codec.encode (Fun.flip Event.write) e) in
  Alcotest.(check bool) "event roundtrip" true (e = e')

let event_wire_size_is_small () =
  (* The paper reports ~16 bytes per synchronization event. *)
  let e = mk_event 3 1000 ~kind:Event.Acquire ~resource:200 ~version:900 in
  let n = Event.wire_size e in
  Alcotest.(check bool) (Printf.sprintf "size %d <= 16" n) true (n <= 16)

let append_enforces_clock_order () =
  let t = Trace.create ~slots:1 () in
  Trace.append t (mk_event 0 1);
  (match Trace.append t (mk_event 0 3) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "gap in clocks must be rejected");
  match Trace.append t (mk_event 0 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "duplicate clock must be rejected"

let edge_validation () =
  let t = fig2_trace () in
  (match Trace.add_edge t ~src:(id 0 1) ~dst:(id 0 2) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "intra-slot edge must be rejected");
  match Trace.add_edge t ~src:(id 0 9) ~dst:(id 1 1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "dangling source must be rejected"

let incoming_edges () =
  let t = fig2_trace () in
  Alcotest.(check int) "one incoming edge" 1 (List.length (Trace.incoming t (id 1 1)));
  Alcotest.(check bool)
    "edge source" true
    (Event.Id.equal (List.hd (Trace.incoming t (id 1 1))) (id 0 2));
  Alcotest.(check int) "no incoming" 0 (List.length (Trace.incoming t (id 0 1)))

let cut_consistency () =
  (* Paper Fig. 2: c1 = [3;2] consistent; c2 = [4;2] would be inconsistent
     with an edge (t1,3) -> (t0,4).  Model that exact shape. *)
  let t = Trace.create ~slots:2 () in
  for c = 1 to 4 do
    Trace.append t (mk_event 0 c)
  done;
  for c = 1 to 3 do
    Trace.append t (mk_event 1 c)
  done;
  Trace.add_edge t ~src:(id 1 3) ~dst:(id 0 4);
  let consistent = Trace.Cut.of_array [| 3; 2 |] in
  let inconsistent = Trace.Cut.of_array [| 4; 2 |] in
  Alcotest.(check bool) "c1 consistent" true (Trace.is_consistent t consistent);
  Alcotest.(check bool) "c2 inconsistent" false (Trace.is_consistent t inconsistent)

let last_consistent_cut () =
  let t = Trace.create ~slots:2 () in
  for c = 1 to 4 do
    Trace.append t (mk_event 0 c)
  done;
  for c = 1 to 3 do
    Trace.append t (mk_event 1 c)
  done;
  Trace.add_edge t ~src:(id 1 3) ~dst:(id 0 4);
  let repaired = Trace.last_consistent t (Trace.Cut.of_array [| 4; 2 |]) in
  Alcotest.(check (array int))
    "drops the blocked event" [| 3; 2 |]
    (Trace.Cut.to_array repaired);
  (* A consistent cut is a fixpoint. *)
  let c = Trace.Cut.of_array [| 3; 2 |] in
  Alcotest.(check (array int))
    "fixpoint" (Trace.Cut.to_array c)
    (Trace.Cut.to_array (Trace.last_consistent t c))

let last_consistent_cascades () =
  (* A chain of edges must cascade: cutting one event out forces its
     causal descendants out too. *)
  let t = Trace.create ~slots:3 () in
  Trace.append t (mk_event 0 1);
  Trace.append t (mk_event 1 1);
  Trace.append t (mk_event 1 2);
  Trace.append t (mk_event 2 1);
  Trace.add_edge t ~src:(id 0 1) ~dst:(id 1 1);
  Trace.add_edge t ~src:(id 1 2) ~dst:(id 2 1);
  (* Cut excludes (0,1) but includes everything else: (1,1) must go, hence
     (1,2), hence (2,1). *)
  let repaired = Trace.last_consistent t (Trace.Cut.of_array [| 0; 2; 1 |]) in
  Alcotest.(check (array int)) "cascade" [| 0; 0; 0 |] (Trace.Cut.to_array repaired)

let prefix_property () =
  let small = fig2_trace () in
  let big = fig2_trace () in
  Trace.append big (mk_event 0 3);
  Trace.add_edge big ~src:(id 1 2) ~dst:(id 0 3);
  Alcotest.(check bool) "small <= big" true (Trace.is_prefix small ~of_:big);
  Alcotest.(check bool) "big </= small" false (Trace.is_prefix big ~of_:small);
  Alcotest.(check bool) "reflexive" true (Trace.is_prefix small ~of_:small);
  (* Same shape, different event content: not a prefix. *)
  let differing = Trace.create ~slots:2 () in
  Trace.append differing (mk_event 0 1 ~kind:Event.Release);
  Alcotest.(check bool) "content differs" false (Trace.is_prefix differing ~of_:big)

let delta_roundtrip_and_apply () =
  let t = fig2_trace () in
  let base = Trace.Cut.zero ~slots:2 in
  let d = Trace.Delta.extract t ~base in
  Alcotest.(check int) "all events" 4 (List.length d.Trace.Delta.events);
  Alcotest.(check int) "all edges" 1 (List.length d.Trace.Delta.edges);
  let d' =
    Codec.decode Trace.Delta.read (Codec.encode (Fun.flip Trace.Delta.write) d)
  in
  let t' = Trace.create ~slots:2 () in
  (match Trace.Delta.apply t' d' with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "identical traces" true (Trace.is_prefix t ~of_:t');
  Alcotest.(check bool) "identical traces rev" true (Trace.is_prefix t' ~of_:t)

let delta_incremental () =
  let t = Trace.create ~slots:2 () in
  let mirror = Trace.create ~slots:2 () in
  let sync () =
    let d = Trace.Delta.extract t ~base:(Trace.end_cut mirror) in
    match Trace.Delta.apply mirror d with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  in
  Trace.append t (mk_event 0 1);
  sync ();
  Trace.append t (mk_event 1 1);
  Trace.append t (mk_event 0 2);
  Trace.add_edge t ~src:(id 1 1) ~dst:(id 0 2);
  sync ();
  sync ();
  (* empty delta is fine *)
  Alcotest.(check bool) "mirror caught up" true (Trace.is_prefix t ~of_:mirror);
  Alcotest.(check int) "mirror edges" 1 (Trace.edge_count mirror)

let delta_apply_rejects_wrong_base () =
  let t = fig2_trace () in
  let d = Trace.Delta.extract t ~base:(Trace.Cut.zero ~slots:2) in
  let t' = fig2_trace () in
  (* t' already has the events, so base 0 no longer matches. *)
  match Trace.Delta.apply t' d with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject mismatched base"

let delta_apply_rejects_malformed () =
  let t = Trace.create ~slots:2 () in
  let d =
    {
      Trace.Delta.base = Trace.Cut.zero ~slots:2;
      upto = Trace.Cut.of_array [| 2; 0 |];
      events = [ mk_event 0 2 ];
      (* gap: clock 1 missing *)
      edges = [];
    }
  in
  (match Trace.Delta.apply t d with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "must reject non-contiguous events");
  Alcotest.(check int) "trace untouched" 0 (Trace.event_count t)

let cut_algebra () =
  let a = Trace.Cut.of_array [| 1; 5 |] in
  let b = Trace.Cut.of_array [| 2; 3 |] in
  Alcotest.(check (array int)) "min" [| 1; 3 |]
    (Trace.Cut.to_array (Trace.Cut.min a b));
  Alcotest.(check bool) "not leq" false (Trace.Cut.leq a b);
  Alcotest.(check bool) "includes" true (Trace.Cut.includes a (id 1 5));
  Alcotest.(check bool) "excludes" false (Trace.Cut.includes a (id 0 2));
  let c = Codec.decode Trace.Cut.read (Codec.encode (Fun.flip Trace.Cut.write) a) in
  Alcotest.(check bool) "cut roundtrip" true (Trace.Cut.equal a c)

(* --- Vector clocks --- *)

let vclock_basics () =
  let v = Vclock.create ~slots:3 in
  ignore (Vclock.tick v 0);
  ignore (Vclock.tick v 0);
  Vclock.observe v (id 1 5);
  Alcotest.(check int) "own" 2 (Vclock.get v 0);
  Alcotest.(check int) "observed" 5 (Vclock.get v 1);
  Alcotest.(check bool) "dominates old" true (Vclock.dominates v (id 1 4));
  Alcotest.(check bool) "not future" false (Vclock.dominates v (id 1 6));
  let u = Vclock.create ~slots:3 in
  Vclock.observe u (id 2 9);
  Vclock.join v u;
  Alcotest.(check int) "joined" 9 (Vclock.get v 2);
  Alcotest.(check bool) "leq" true (Vclock.leq u v)

(* --- Properties --- *)

(* Generate a random trace: a list of (slot, optional edge back to a random
   earlier event in another slot). *)
let random_trace_gen =
  QCheck.Gen.(
    let* slots = int_range 2 4 in
    let* n = int_range 0 60 in
    let* choices =
      list_repeat n (pair (int_bound (slots - 1)) (pair bool (int_bound 1000)))
    in
    return (slots, choices))

let build_random_trace (slots, choices) =
  let t = Trace.create ~slots () in
  let clocks = Array.make slots 0 in
  List.iter
    (fun (slot, (want_edge, r)) ->
      clocks.(slot) <- clocks.(slot) + 1;
      Trace.append t
        (mk_event slot clocks.(slot) ~kind:Event.Acquire ~resource:(r mod 7));
      if want_edge then begin
        (* pick a source event in some other nonempty slot *)
        let src_slot = (slot + 1 + (r mod (slots - 1))) mod slots in
        let src_slot = if src_slot = slot then (slot + 1) mod slots else src_slot in
        if clocks.(src_slot) > 0 then
          Trace.add_edge t
            ~src:(id src_slot (1 + (r mod clocks.(src_slot))))
            ~dst:(id slot clocks.(slot))
      end)
    choices;
  t

let prop_last_consistent_is_consistent =
  QCheck.Test.make ~name:"last_consistent yields a consistent cut" ~count:100
    (QCheck.make random_trace_gen) (fun spec ->
      let t = build_random_trace spec in
      let full = Trace.end_cut t in
      (* Chop one event off slot 0 to create potentially inconsistent cuts. *)
      let arr = Trace.Cut.to_array full in
      if arr.(0) > 0 then arr.(0) <- arr.(0) - 1;
      let cut = Trace.Cut.of_array arr in
      let fixed = Trace.last_consistent t cut in
      Trace.is_consistent t fixed && Trace.Cut.leq fixed cut)

let prop_delta_roundtrip =
  QCheck.Test.make ~name:"delta extract/apply reproduces the trace" ~count:100
    (QCheck.make random_trace_gen) (fun spec ->
      let t = build_random_trace spec in
      let t' = Trace.create ~slots:(Trace.num_slots t) () in
      let d = Trace.Delta.extract t ~base:(Trace.end_cut t') in
      let d =
        Codec.decode Trace.Delta.read
          (Codec.encode (Fun.flip Trace.Delta.write) d)
      in
      match Trace.Delta.apply t' d with
      | Error _ -> false
      | Ok () -> Trace.is_prefix t ~of_:t' && Trace.is_prefix t' ~of_:t)

let prop_full_cut_consistent =
  QCheck.Test.make ~name:"a recorded trace end is always consistent" ~count:100
    (QCheck.make random_trace_gen) (fun spec ->
      let t = build_random_trace spec in
      Trace.is_consistent t (Trace.end_cut t))

let suite =
  [
    Alcotest.test_case "event roundtrip" `Quick event_roundtrip;
    Alcotest.test_case "event wire size ~16B" `Quick event_wire_size_is_small;
    Alcotest.test_case "append clock order" `Quick append_enforces_clock_order;
    Alcotest.test_case "edge validation" `Quick edge_validation;
    Alcotest.test_case "incoming edges" `Quick incoming_edges;
    Alcotest.test_case "cut consistency (fig 2)" `Quick cut_consistency;
    Alcotest.test_case "last consistent cut" `Quick last_consistent_cut;
    Alcotest.test_case "last consistent cascades" `Quick last_consistent_cascades;
    Alcotest.test_case "prefix property" `Quick prefix_property;
    Alcotest.test_case "delta roundtrip+apply" `Quick delta_roundtrip_and_apply;
    Alcotest.test_case "delta incremental" `Quick delta_incremental;
    Alcotest.test_case "delta rejects wrong base" `Quick delta_apply_rejects_wrong_base;
    Alcotest.test_case "delta rejects malformed" `Quick delta_apply_rejects_malformed;
    Alcotest.test_case "cut algebra" `Quick cut_algebra;
    Alcotest.test_case "vclock basics" `Quick vclock_basics;
    QCheck_alcotest.to_alcotest prop_last_consistent_is_consistent;
    QCheck_alcotest.to_alcotest prop_delta_roundtrip;
    QCheck_alcotest.to_alcotest prop_full_cut_consistent;
  ]

(* Regression: a trace with a nonzero base (checkpoint horizon) must ship
   its edges in deltas — the binary search slices by absolute destination
   clock, not vec index. *)
let delta_extract_from_based_trace () =
  let base = Trace.Cut.of_array [| 100; 200 |] in
  let t = Trace.create ~base ~slots:2 () in
  Trace.append t (mk_event 0 101);
  Trace.append t (mk_event 1 201);
  Trace.append t (mk_event 1 202);
  (* A pre-base source is legal. *)
  Trace.add_edge t ~src:(id 0 50) ~dst:(id 1 201);
  Trace.add_edge t ~src:(id 0 101) ~dst:(id 1 202);
  let d = Trace.Delta.extract t ~base in
  Alcotest.(check int) "all events shipped" 3 (List.length d.Trace.Delta.events);
  Alcotest.(check int) "all edges shipped" 2 (List.length d.Trace.Delta.edges);
  (* Apply onto a mirror with the same base. *)
  let m = Trace.create ~base ~slots:2 () in
  (match Trace.Delta.apply_overlapping m d with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "mirror edges" 2 (Trace.edge_count m);
  Alcotest.(check int) "incoming across the base" 1
    (List.length (Trace.incoming m (id 1 201)));
  (* Incremental extraction from a mid cut also keeps edges. *)
  let mid = Trace.Cut.of_array [| 101; 201 |] in
  let d2 = Trace.Delta.extract t ~base:mid in
  Alcotest.(check int) "tail events" 1 (List.length d2.Trace.Delta.events);
  Alcotest.(check int) "tail edge" 1 (List.length d2.Trace.Delta.edges)

let based_trace_cuts () =
  let base = Trace.Cut.of_array [| 10; 0 |] in
  let t = Trace.create ~base ~slots:2 () in
  Trace.append t (mk_event 0 11);
  Alcotest.(check int) "slot_end absolute" 11 (Trace.slot_end t 0);
  Alcotest.(check bool) "find above base" true (Trace.find t (id 0 11) <> None);
  Alcotest.(check bool) "find below base" true (Trace.find t (id 0 5) = None);
  Alcotest.(check (array int)) "end cut" [| 11; 0 |]
    (Trace.Cut.to_array (Trace.end_cut t))

let regression_suite =
  [
    Alcotest.test_case "delta from based trace (edge slicing)" `Quick
      delta_extract_from_based_trace;
    Alcotest.test_case "based trace basics" `Quick based_trace_cuts;
  ]

let suite = suite @ regression_suite

(* --- Trace rendering (the §6.1 debugging workflow) --- *)

let render_dot_and_dump () =
  let t = fig2_trace () in
  let dot = Render.to_dot ~resource_name:(fun r -> Printf.sprintf "lock%d" r) t in
  Alcotest.(check bool) "has clusters" true
    (_astring_contains dot "cluster_slot0" && _astring_contains dot "cluster_slot1");
  Alcotest.(check bool) "has the causal edge" true
    (_astring_contains dot "e_0_2 -> e_1_1");
  Alcotest.(check bool) "names resources" true (_astring_contains dot "lock1");
  let hl = Render.to_dot ~highlight:[ id 1 1 ] t in
  Alcotest.(check bool) "highlight present" true (_astring_contains hl "fillcolor=red");
  let text = Render.dump t in
  Alcotest.(check bool) "dump mentions acquire" true (_astring_contains text "acquire");
  Alcotest.(check bool) "dump shows incoming" true (_astring_contains text "<=")

let render_window_bounded () =
  let t = Trace.create ~slots:2 () in
  for c = 1 to 100 do
    Trace.append t (mk_event 0 c);
    Trace.append t (mk_event 1 c);
    if c > 1 then Trace.add_edge t ~src:(id 0 (c - 1)) ~dst:(id 1 c)
  done;
  let center = Trace.Cut.of_array [| 50; 50 |] in
  let events, edges = Render.window t ~center ~radius:3 in
  Alcotest.(check int) "7 clocks x 2 slots" 14 (List.length events);
  Alcotest.(check bool) "edges only inside window" true
    (List.for_all
       (fun ((s : Event.Id.t), (d : Event.Id.t)) ->
         abs (s.clock - 50) <= 3 && abs (d.clock - 50) <= 3)
       edges)

let render_suite =
  [
    Alcotest.test_case "render dot + dump" `Quick render_dot_and_dump;
    Alcotest.test_case "render window bounded" `Quick render_window_bounded;
  ]

(* --- In-place compaction --- *)

let compact_keeps_spanning_edges () =
  let t = Trace.create ~slots:2 () in
  for c = 1 to 4 do
    Trace.append t (mk_event 0 c)
  done;
  for c = 1 to 4 do
    Trace.append t (mk_event 1 c)
  done;
  (* One edge entirely below the cut, one spanning it, one entirely above. *)
  Trace.add_edge t ~src:(id 0 1) ~dst:(id 1 1);
  Trace.add_edge t ~src:(id 0 2) ~dst:(id 1 3);
  Trace.add_edge t ~src:(id 0 4) ~dst:(id 1 4);
  let cut = Trace.Cut.of_array [| 2; 2 |] in
  Trace.compact t ~upto:cut;
  Alcotest.(check (array int)) "base advanced" [| 2; 2 |]
    (Trace.Cut.to_array (Trace.base_cut t));
  Alcotest.(check int) "events dropped" 4 (Trace.event_count t);
  Alcotest.(check int) "below-cut edge dropped" 2 (Trace.edge_count t);
  Alcotest.(check int) "incoming index follows" 2 (Trace.incoming_entries t);
  Alcotest.(check bool) "compacted event gone" true (Trace.find t (id 1 1) = None);
  Alcotest.(check bool) "live event stays" true (Trace.find t (id 1 3) <> None);
  (* The spanning edge survives with its pre-horizon source. *)
  Alcotest.(check bool) "spanning edge" true
    (List.exists (fun s -> Event.Id.equal s (id 0 2)) (Trace.incoming t (id 1 3)));
  (* Extraction from the new horizon ships it, and a checkpoint-based
     mirror accepts it. *)
  let d = Trace.Delta.extract t ~base:cut in
  Alcotest.(check int) "delta events" 4 (List.length d.Trace.Delta.events);
  Alcotest.(check int) "delta edges" 2 (List.length d.Trace.Delta.edges);
  let m = Trace.create ~base:cut ~slots:2 () in
  (match Trace.Delta.apply m d with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "mirror edges" 2 (Trace.edge_count m)

let compact_to_empty_and_continue () =
  let t = fig2_trace () in
  Trace.compact t ~upto:(Trace.end_cut t);
  Alcotest.(check int) "no events" 0 (Trace.event_count t);
  Alcotest.(check int) "no edges" 0 (Trace.edge_count t);
  Alcotest.(check int) "no incoming" 0 (Trace.incoming_entries t);
  (* Appending continues at the same absolute clocks as if nothing
     happened. *)
  Trace.append t (mk_event 0 3);
  Trace.append t (mk_event 1 3);
  Trace.add_edge t ~src:(id 0 3) ~dst:(id 1 3);
  (* Pre-horizon sources remain legal after compaction. *)
  Trace.append t (mk_event 1 4);
  Trace.add_edge t ~src:(id 0 2) ~dst:(id 1 4);
  Alcotest.(check (array int)) "end grows on" [| 3; 4 |]
    (Trace.Cut.to_array (Trace.end_cut t));
  let d = Trace.Delta.extract t ~base:(Trace.base_cut t) in
  Alcotest.(check int) "post-compaction delta" 3 (List.length d.Trace.Delta.events)

let compact_repeated_and_rejects () =
  let t = fig2_trace () in
  let cut = Trace.Cut.of_array [| 1; 1 |] in
  Trace.compact t ~upto:cut;
  let gen1 = Trace.compactions t in
  Alcotest.(check int) "one compaction" 1 gen1;
  (* Same cut again: nothing to drop, generation unchanged. *)
  Trace.compact t ~upto:cut;
  Alcotest.(check int) "idempotent" gen1 (Trace.compactions t);
  (* A stale (lower) cut is clamped, not an error. *)
  Trace.compact t ~upto:(Trace.Cut.zero ~slots:2);
  Alcotest.(check int) "stale cut no-op" gen1 (Trace.compactions t);
  Alcotest.(check int) "events kept" 2 (Trace.event_count t);
  (match Trace.compact t ~upto:(Trace.Cut.of_array [| 9; 9 |]) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "cut beyond end must be rejected");
  match Trace.compact t ~upto:(Trace.Cut.of_array [| 1 |]) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "arity mismatch must be rejected"

let cursor_matches_extract () =
  let t = Trace.create ~slots:2 () in
  let cur = Trace.Delta.cursor t ~base:(Trace.end_cut t) in
  let step_and_check n =
    let base = Trace.Delta.cursor_base cur in
    let d_plain = Trace.Delta.extract t ~base in
    let d_cur = Trace.Delta.extract_next t cur in
    Alcotest.(check bool)
      (Printf.sprintf "step %d: cursor delta equals plain extract" n)
      true (d_plain = d_cur)
  in
  Trace.append t (mk_event 0 1);
  Trace.append t (mk_event 1 1);
  Trace.add_edge t ~src:(id 0 1) ~dst:(id 1 1);
  step_and_check 1;
  Trace.append t (mk_event 0 2);
  Trace.append t (mk_event 1 2);
  Trace.add_edge t ~src:(id 0 2) ~dst:(id 1 2);
  step_and_check 2;
  (* Empty window. *)
  step_and_check 3;
  (* A compaction invalidates the cached indices; the cursor must
     re-derive them transparently. *)
  Trace.append t (mk_event 0 3);
  Trace.append t (mk_event 1 3);
  Trace.add_edge t ~src:(id 0 3) ~dst:(id 1 3);
  Trace.compact t ~upto:(Trace.Cut.of_array [| 2; 2 |]);
  step_and_check 4;
  Alcotest.(check (array int)) "cursor at end" [| 3; 3 |]
    (Trace.Cut.to_array (Trace.Delta.cursor_base cur))

(* Compaction must be invisible to everything above the horizon: the same
   trace with and without a mid-point compaction extracts identical deltas
   and replays to the same end. *)
let prop_compaction_invisible =
  QCheck.Test.make ~name:"compaction is invisible above the horizon" ~count:100
    (QCheck.make random_trace_gen) (fun spec ->
      let control = build_random_trace spec in
      let compacted = build_random_trace spec in
      let mid =
        Trace.Cut.of_array
          (Array.map (fun w -> w / 2) (Trace.Cut.to_array (Trace.end_cut control)))
      in
      Trace.compact compacted ~upto:mid;
      let d_control = Trace.Delta.extract control ~base:mid in
      let d_compacted = Trace.Delta.extract compacted ~base:mid in
      (* Same delta, same wire bytes, and a checkpoint-based replica built
         from it converges to the same trace end. *)
      d_control = d_compacted
      && Codec.encode (Fun.flip Trace.Delta.write) d_control
         = Codec.encode (Fun.flip Trace.Delta.write) d_compacted
      &&
      let m = Trace.create ~base:mid ~slots:(Trace.num_slots control) () in
      match Trace.Delta.apply m d_compacted with
      | Error _ -> false
      | Ok () ->
        Trace.Cut.equal (Trace.end_cut m) (Trace.end_cut control)
        && Trace.edge_count m = Trace.edge_count compacted)

let prop_cursor_matches_extract =
  QCheck.Test.make ~name:"cursor extraction equals one-shot extraction"
    ~count:100 (QCheck.make random_trace_gen) (fun spec ->
      let t = build_random_trace spec in
      let mid =
        Trace.Cut.of_array
          (Array.map (fun w -> w / 2) (Trace.Cut.to_array (Trace.end_cut t)))
      in
      let cur = Trace.Delta.cursor t ~base:mid in
      let d1 = Trace.Delta.extract_next t cur in
      d1 = Trace.Delta.extract t ~base:mid
      && Trace.Delta.is_empty (Trace.Delta.extract_next t cur))

let compaction_suite =
  [
    Alcotest.test_case "compact keeps spanning edges" `Quick
      compact_keeps_spanning_edges;
    Alcotest.test_case "compact to empty + continue" `Quick
      compact_to_empty_and_continue;
    Alcotest.test_case "compact repeated + rejects" `Quick
      compact_repeated_and_rejects;
    Alcotest.test_case "cursor matches extract" `Quick cursor_matches_extract;
    QCheck_alcotest.to_alcotest prop_compaction_invisible;
    QCheck_alcotest.to_alcotest prop_cursor_matches_extract;
  ]

(* --- Delta wire format: v1 compactness and v0 compatibility --- *)

(* Re-emit exactly what the pre-v1 writer produced: explicit cuts, events
   with explicit ids, edges as id pairs. *)
let encode_legacy_v0 (d : Trace.Delta.t) =
  let b = Codec.sink () in
  Trace.Cut.write b d.Trace.Delta.base;
  Trace.Cut.write b d.Trace.Delta.upto;
  Codec.write_list b Event.write d.Trace.Delta.events;
  Codec.write_list b
    (fun b (src, dst) ->
      Event.Id.write b src;
      Event.Id.write b dst)
    d.Trace.Delta.edges;
  Codec.contents b

let legacy_v0_still_decodes () =
  let t = fig2_trace () in
  let d = Trace.Delta.extract t ~base:(Trace.Cut.zero ~slots:2) in
  let d' = Codec.decode Trace.Delta.read (encode_legacy_v0 d) in
  Alcotest.(check bool) "v0 bytes decode to the same delta" true (d = d')

let v1_beats_v0_size () =
  let t = Trace.create ~slots:3 () in
  for c = 1 to 50 do
    for s = 0 to 2 do
      Trace.append t (mk_event s c ~resource:(c mod 7) ~version:c)
    done;
    if c > 1 then Trace.add_edge t ~src:(id 0 (c - 1)) ~dst:(id 1 c)
  done;
  let d = Trace.Delta.extract t ~base:(Trace.Cut.zero ~slots:3) in
  let v1 = Trace.Delta.wire_size d in
  let v0 = String.length (encode_legacy_v0 d) in
  Alcotest.(check bool)
    (Printf.sprintf "v1 %dB < v0 %dB" v1 v0)
    true (v1 < v0);
  (* The §6.3 target: under 16 bytes per synchronization event. *)
  let per_event = float_of_int v1 /. float_of_int (List.length d.Trace.Delta.events) in
  Alcotest.(check bool)
    (Printf.sprintf "%.1f B/event < 16" per_event)
    true (per_event < 16.)

let wire_size_matches_encoding () =
  let t = fig2_trace () in
  let d = Trace.Delta.extract t ~base:(Trace.Cut.zero ~slots:2) in
  Alcotest.(check int) "delta counting sink exact"
    (String.length (Codec.encode (Fun.flip Trace.Delta.write) d))
    (Trace.Delta.wire_size d);
  let e = mk_event 3 17 ~kind:Event.Try_fail ~resource:42 ~version:7 ~payload:"xy" in
  Alcotest.(check int) "event counting sink exact"
    (String.length (Codec.encode (Fun.flip Event.write) e))
    (Event.wire_size e)

let prop_v1_roundtrip_structural =
  QCheck.Test.make ~name:"v1 delta codec roundtrips structurally" ~count:200
    (QCheck.make random_trace_gen) (fun spec ->
      let t = build_random_trace spec in
      let mid =
        Trace.Cut.of_array
          (Array.map (fun w -> w / 2) (Trace.Cut.to_array (Trace.end_cut t)))
      in
      let check base =
        let d = Trace.Delta.extract t ~base in
        let encoded = Codec.encode (Fun.flip Trace.Delta.write) d in
        d = Codec.decode Trace.Delta.read encoded
        && String.length encoded = Trace.Delta.wire_size d
      in
      check (Trace.Cut.zero ~slots:(Trace.num_slots t)) && check mid)

let prop_v0_v1_agree =
  QCheck.Test.make ~name:"legacy v0 bytes decode to the same delta" ~count:200
    (QCheck.make random_trace_gen) (fun spec ->
      let t = build_random_trace spec in
      let d = Trace.Delta.extract t ~base:(Trace.Cut.zero ~slots:(Trace.num_slots t)) in
      Codec.decode Trace.Delta.read (encode_legacy_v0 d) = d)

let codec_suite =
  [
    Alcotest.test_case "legacy v0 still decodes" `Quick legacy_v0_still_decodes;
    Alcotest.test_case "v1 smaller than v0, <16B/event" `Quick v1_beats_v0_size;
    Alcotest.test_case "counting sink sizes exact" `Quick
      wire_size_matches_encoding;
    QCheck_alcotest.to_alcotest prop_v1_roundtrip_structural;
    QCheck_alcotest.to_alcotest prop_v0_v1_agree;
  ]

let suite = suite @ render_suite @ compaction_suite @ codec_suite
