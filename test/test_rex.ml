(* End-to-end tests of the Rex framework: replication, consistency across
   replicas, failover with promotion mid-stream, demotion rollback,
   checkpointing + recovery, query semantics, and the SMR baseline. *)

open Sim
module R = Rex_core

(* --- Test application: a sharded key/value counter store. ---
   Requests: "INC <key>" -> new value; "PUT <key> <v>" -> "OK";
   "GET <key>" -> value (also served as a query). *)

let test_app ?(shards = 4) ?(work = 5e-5) () : R.App.factory =
 fun api ->
  let shard_tables = Array.init shards (fun _ -> Hashtbl.create 64) in
  let shard_locks =
    Array.init shards (fun i -> R.Api.lock api (Printf.sprintf "shard%d" i))
  in
  let shard_of key = Hashtbl.hash key mod shards in
  let with_shard key f =
    let i = shard_of key in
    Rexsync.Lock.lock shard_locks.(i);
    Fun.protect
      ~finally:(fun () -> Rexsync.Lock.unlock shard_locks.(i))
      (fun () -> f shard_tables.(i))
  in
  let execute ~request =
    R.Api.work api work;
    match String.split_on_char ' ' request with
    | [ "INC"; key ] ->
      with_shard key (fun tbl ->
          let v = Option.value (Hashtbl.find_opt tbl key) ~default:0 + 1 in
          Hashtbl.replace tbl key v;
          string_of_int v)
    | [ "PUT"; key; v ] ->
      with_shard key (fun tbl ->
          Hashtbl.replace tbl key (int_of_string v);
          "OK")
    | [ "GET"; key ] ->
      with_shard key (fun tbl ->
          string_of_int (Option.value (Hashtbl.find_opt tbl key) ~default:0))
    | _ -> "ERR:bad-request"
  in
  let query ~request =
    match String.split_on_char ' ' request with
    | [ "GET"; key ] ->
      let tbl = shard_tables.(shard_of key) in
      string_of_int (Option.value (Hashtbl.find_opt tbl key) ~default:0)
    | _ -> "ERR:bad-query"
  in
  let sorted_bindings () =
    Array.to_list shard_tables
    |> List.concat_map (fun tbl -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
    |> List.sort compare
  in
  let digest () =
    string_of_int (Hashtbl.hash (sorted_bindings ()))
  in
  let write_checkpoint sink =
    Codec.write_list sink
      (fun b (k, v) ->
        Codec.write_string b k;
        Codec.write_varint b v)
      (sorted_bindings ())
  in
  let read_checkpoint src =
    Array.iter Hashtbl.reset shard_tables;
    let bindings =
      Codec.read_list src (fun s ->
          let k = Codec.read_string s in
          let v = Codec.read_varint s in
          (k, v))
    in
    List.iter
      (fun (k, v) -> Hashtbl.replace shard_tables.(shard_of k) k v)
      bindings
  in
  { R.App.name = "test-kv"; execute; query; write_checkpoint; read_checkpoint; digest }

let cfg ?(workers = 4) ?(checkpoint_interval = None) () =
  R.Config.make ~workers ~checkpoint_interval ~replicas:[ 0; 1; 2 ] ()

(* Drive [n] requests from concurrent client fibers on the client node;
   returns the collected (request, response) pairs once all have
   completed or the time limit passes. *)
let drive_requests ?(concurrency = 8) cl requests eng node =
  let results = ref [] in
  let remaining = ref (List.length requests) in
  let pending = ref requests in
  for _ = 1 to concurrency do
    ignore
      (Engine.spawn eng ~node ~name:"client" (fun () ->
           let rec loop () =
             match !pending with
             | [] -> ()
             | req :: rest ->
               pending := rest;
               let resp = R.Client.call cl req in
               results := (req, resp) :: !results;
               decr remaining;
               loop ()
           in
           loop ()))
  done;
  let deadline = Engine.clock eng +. 120. in
  let rec pump () =
    Engine.run ~until:(Engine.clock eng +. 0.5) eng;
    if !remaining > 0 && Engine.clock eng < deadline then pump ()
  in
  pump ();
  !results

(* Let secondaries finish replaying everything committed. *)
let quiesce cluster =
  R.Cluster.run_for cluster 0.5

let all_digests cluster =
  Array.to_list (R.Cluster.servers cluster)
  |> List.filter (fun s ->
         Engine.node_alive (R.Cluster.engine cluster) (R.Server.node s))
  |> List.map (fun s -> (R.Server.node s, R.Server.app_digest s))

let check_digests_equal what cluster =
  match all_digests cluster with
  | [] -> Alcotest.fail "no live replicas"
  | (_, d0) :: rest ->
    List.iter
      (fun (n, d) ->
        Alcotest.(check string) (Printf.sprintf "%s: replica %d" what n) d0 d)
      rest

let e2e_replication () =
  let cluster = R.Cluster.create ~seed:3 (cfg ()) (test_app ()) in
  R.Cluster.start cluster;
  ignore (R.Cluster.await_primary cluster);
  let cl = R.Cluster.client cluster in
  let reqs = List.init 60 (fun i -> Printf.sprintf "INC key%d" (i mod 7)) in
  let results =
    drive_requests cl reqs (R.Cluster.engine cluster) (R.Cluster.client_node cluster)
  in
  Alcotest.(check int) "all requests answered" 60
    (List.length (List.filter (fun (_, r) -> r <> None) results));
  quiesce cluster;
  R.Cluster.check_no_divergence cluster;
  check_digests_equal "digests converge" cluster;
  (* Primary answered with monotonically increasing counter values per key. *)
  let primary = Option.get (R.Cluster.primary cluster) in
  Alcotest.(check string) "final value via query" "9"
    (R.Server.query primary "GET key0")

let secondary_replays_concurrently () =
  (* The waited-events counter only moves on replicas that replay. *)
  let cluster = R.Cluster.create ~seed:5 (cfg ()) (test_app ()) in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let cl = R.Cluster.client cluster in
  let reqs = List.init 80 (fun i -> Printf.sprintf "INC k%d" (i mod 3)) in
  ignore
    (drive_requests cl reqs (R.Cluster.engine cluster)
       (R.Cluster.client_node cluster));
  quiesce cluster;
  Array.iter
    (fun s ->
      if R.Server.node s <> R.Server.node primary then begin
        let st = R.Server.runtime_stats s in
        Alcotest.(check bool)
          (Printf.sprintf "replica %d replayed events" (R.Server.node s))
          true
          (st.Rexsync.Runtime.events_replayed > 0)
      end)
    (R.Cluster.servers cluster);
  R.Cluster.check_no_divergence cluster

let failover_continues_service () =
  let cluster = R.Cluster.create ~seed:11 (cfg ()) (test_app ()) in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let cl = R.Cluster.client cluster in
  let eng = R.Cluster.engine cluster in
  let cnode = R.Cluster.client_node cluster in
  ignore (drive_requests cl (List.init 30 (fun i -> Printf.sprintf "INC a%d" (i mod 3))) eng cnode);
  (* Kill the primary mid-flight. *)
  R.Cluster.crash cluster (R.Server.node primary);
  R.Cluster.run_for cluster 1.0;
  let results2 =
    drive_requests cl (List.init 30 (fun i -> Printf.sprintf "INC b%d" (i mod 3))) eng cnode
  in
  Alcotest.(check bool) "service resumed" true
    (List.exists (fun (_, r) -> r <> None) results2);
  let new_primary = R.Cluster.await_primary cluster in
  Alcotest.(check bool) "new primary is a different node" true
    (R.Server.node new_primary <> R.Server.node primary);
  quiesce cluster;
  R.Cluster.check_no_divergence cluster;
  check_digests_equal "digests converge after failover" cluster

let checkpoint_and_rejoin () =
  let cluster =
    R.Cluster.create ~seed:17
      (cfg ~checkpoint_interval:(Some 0.5) ())
      (test_app ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let cl = R.Cluster.client cluster in
  let eng = R.Cluster.engine cluster in
  let cnode = R.Cluster.client_node cluster in
  ignore (drive_requests cl (List.init 40 (fun i -> Printf.sprintf "INC c%d" (i mod 5))) eng cnode);
  (* Run past a checkpoint interval so secondaries snapshot. *)
  R.Cluster.run_for cluster 1.5;
  let victim =
    R.Server.node
      (Array.to_list (R.Cluster.servers cluster)
      |> List.find (fun s -> not (R.Server.is_primary s)))
  in
  let ckpts_before =
    Array.fold_left
      (fun acc s -> acc + (R.Server.stats s).R.Server.checkpoints_written)
      0 (R.Cluster.servers cluster)
  in
  Alcotest.(check bool) "some secondary wrote a checkpoint" true (ckpts_before > 0);
  R.Cluster.crash cluster victim;
  R.Cluster.run_for cluster 0.5;
  ignore (drive_requests cl (List.init 40 (fun i -> Printf.sprintf "INC d%d" (i mod 5))) eng cnode);
  R.Cluster.restart cluster victim;
  R.Cluster.run_for cluster 5.0;
  ignore primary;
  R.Cluster.check_no_divergence cluster;
  check_digests_equal "rejoined replica converges" cluster

let demotion_rolls_back () =
  let cluster = R.Cluster.create ~seed:23 (cfg ()) (test_app ()) in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let cl = R.Cluster.client cluster in
  let eng = R.Cluster.engine cluster in
  let cnode = R.Cluster.client_node cluster in
  ignore (drive_requests cl (List.init 20 (fun i -> Printf.sprintf "INC e%d" (i mod 2))) eng cnode);
  let p = R.Server.node primary in
  (* Isolate the primary: it keeps executing speculatively; the others
     elect a new leader; on heal the old primary must roll back. *)
  List.iter
    (fun i -> if i <> p then Net.partition (R.Cluster.net cluster) p i)
    [ 0; 1; 2 ];
  (* Local (non-replicated) submissions on the isolated primary create
     speculative state that can never commit. *)
  for i = 0 to 9 do
    R.Server.submit primary (Printf.sprintf "INC zombie%d" i) (fun _ -> ())
  done;
  R.Cluster.run_for cluster 2.0;
  Net.heal_all (R.Cluster.net cluster);
  R.Cluster.run_for cluster 2.0;
  ignore (drive_requests cl (List.init 10 (fun i -> Printf.sprintf "INC f%d" i)) eng cnode);
  R.Cluster.run_for cluster 3.0;
  let old_primary = R.Cluster.server cluster p in
  Alcotest.(check bool) "old primary demoted" true (not (R.Server.is_primary old_primary));
  Alcotest.(check bool) "rollback counted" true
    ((R.Server.stats old_primary).R.Server.rollbacks >= 1);
  R.Cluster.check_no_divergence cluster;
  check_digests_equal "speculative state discarded everywhere" cluster;
  (* The zombie keys must not exist on the rolled-back replica. *)
  Alcotest.(check string) "zombie gone" "0" (R.Server.query old_primary "GET zombie0")

let query_semantics () =
  let cluster = R.Cluster.create ~seed:29 (cfg ()) (test_app ()) in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let cl = R.Cluster.client cluster in
  let eng = R.Cluster.engine cluster in
  let cnode = R.Cluster.client_node cluster in
  (* Sequential on purpose: the PUT must precede the INC. *)
  ignore (drive_requests ~concurrency:1 cl [ "PUT q 41"; "INC q" ] eng cnode);
  quiesce cluster;
  (* Committed state visible on every replica. *)
  Array.iter
    (fun s ->
      Alcotest.(check string)
        (Printf.sprintf "query on replica %d" (R.Server.node s))
        "42" (R.Server.query s "GET q"))
    (R.Cluster.servers cluster);
  ignore primary

let smr_baseline_replicates () =
  let eng = Engine.create ~seed:31 ~cores_per_node:16 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let config = cfg () in
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let servers =
    Array.init 3 (fun i ->
        Smr.create net rpc config ~node:i ~paxos_store:stores.(i) (test_app ()))
  in
  Array.iter Smr.start servers;
  Engine.run ~until:1.0 eng;
  let cl = R.Client.create rpc ~me:3 ~replicas:[ 0; 1; 2 ] in
  let answered = ref 0 in
  ignore
    (Engine.spawn eng ~node:3 (fun () ->
         for i = 1 to 30 do
           match R.Client.call cl (Printf.sprintf "INC s%d" (i mod 4)) with
           | Some _ -> incr answered
           | None -> ()
         done));
  Engine.run ~until:30.0 eng;
  Alcotest.(check int) "all answered" 30 !answered;
  Engine.run ~until:31.0 eng;
  let digests = Array.map Smr.app_digest servers in
  Alcotest.(check string) "smr replicas agree 0=1" digests.(0) digests.(1);
  Alcotest.(check string) "smr replicas agree 0=2" digests.(0) digests.(2);
  (* Sequential execution: every replica executed every request. *)
  Array.iter
    (fun s ->
      Alcotest.(check bool) "executed all" true (Smr.executed_requests s >= 30))
    servers

let suite =
  [
    Alcotest.test_case "e2e replication" `Quick e2e_replication;
    Alcotest.test_case "secondaries replay" `Quick secondary_replays_concurrently;
    Alcotest.test_case "failover continues service" `Quick failover_continues_service;
    Alcotest.test_case "checkpoint + rejoin" `Quick checkpoint_and_rejoin;
    Alcotest.test_case "demotion rolls back" `Quick demotion_rolls_back;
    Alcotest.test_case "query semantics" `Quick query_semantics;
    Alcotest.test_case "smr baseline" `Quick smr_baseline_replicates;
  ]

(* --- Additional behaviours --- *)

(* A client pointed at a secondary gets redirected to the leader. *)
let client_redirects () =
  let cluster = R.Cluster.create ~seed:37 (cfg ()) (test_app ()) in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let secondary =
    Array.to_list (R.Cluster.servers cluster)
    |> List.find (fun s -> not (R.Server.is_primary s))
  in
  let eng = R.Cluster.engine cluster in
  let got = ref None in
  ignore
    (Engine.spawn eng ~node:(R.Cluster.client_node cluster) (fun () ->
         let cl =
           R.Client.create
             (R.Cluster.rpc cluster)
             ~me:(R.Cluster.client_node cluster)
             ~replicas:
               (* deliberately guess the secondary first *)
               [ R.Server.node secondary; R.Server.node primary ]
         in
         got := R.Client.call cl "INC redirected";
         Alcotest.(check int)
           "client learned the real leader" (R.Server.node primary)
           (R.Client.leader_guess cl)));
  R.Cluster.run_for cluster 5.0;
  Alcotest.(check (option string)) "served after redirect" (Some "1") !got

(* Checkpoints garbage-collect the consensus log beneath them. *)
let checkpoint_gc_truncates () =
  let cluster =
    R.Cluster.create ~seed:43
      (cfg ~checkpoint_interval:(Some 0.2) ())
      (test_app ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let done_ = ref 0 in
  ignore
    (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
         for i = 1 to 200 do
           R.Server.submit primary (Printf.sprintf "INC g%d" (i mod 7))
             (fun _ -> incr done_)
         done));
  R.Cluster.run_for cluster 2.0;
  Alcotest.(check int) "load done" 200 !done_;
  (* Some secondary must have written a checkpoint and truncated. *)
  let truncated =
    Array.to_list (R.Cluster.servers cluster)
    |> List.exists (fun s ->
           (not (R.Server.is_primary s))
           && (R.Server.stats s).R.Server.checkpoints_written > 0
           && (R.Server.agreement s).R.Agreement.committed 1 = None)
  in
  Alcotest.(check bool) "log below checkpoint collected" true truncated

(* Bounded memory: under periodic checkpoints every replica compacts its
   trace in place, so the resident event count stays well below the
   cumulative history; and a failover after compaction still converges —
   the dropped prefix was genuinely dead. *)
let compaction_bounds_trace () =
  let cluster =
    R.Cluster.create ~seed:61
      (cfg ~checkpoint_interval:(Some 0.2) ())
      (test_app ())
  in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let eng = R.Cluster.engine cluster in
  let done_ = ref 0 in
  (* Several load bursts with checkpoint intervals between them. *)
  for round = 1 to 6 do
    ignore
      (Engine.spawn eng ~node:(R.Server.node primary) (fun () ->
           for i = 1 to 100 do
             R.Server.submit primary
               (Printf.sprintf "INC h%d" ((round + i) mod 7))
               (fun _ -> incr done_)
           done));
    R.Cluster.run_for cluster 0.7
  done;
  Alcotest.(check int) "load done" 600 !done_;
  Array.iter
    (fun s ->
      let tr = Rexsync.Runtime.trace (R.Server.runtime s) in
      (* Clocks are absolute, so the end cut measures cumulative history
         while [event_count] measures what is still resident. *)
      let total =
        Array.fold_left ( + ) 0 (Trace.Cut.to_array (Trace.end_cut tr))
      in
      let resident = Trace.event_count tr in
      let name what = Printf.sprintf "replica %d %s" (R.Server.node s) what in
      Alcotest.(check bool) (name "compacted") true (Trace.compactions tr > 0);
      Alcotest.(check bool)
        (name (Printf.sprintf "bounded (%d resident of %d)" resident total))
        true
        (2 * resident < total))
    (R.Cluster.servers cluster);
  (* Fail over onto a compacted secondary: it must serve from its
     checkpoint + retained window alone. *)
  R.Cluster.crash cluster (R.Server.node primary);
  R.Cluster.run_for cluster 1.0;
  let cl = R.Cluster.client cluster in
  let results =
    drive_requests cl
      (List.init 30 (fun i -> Printf.sprintf "INC h%d" (i mod 7)))
      eng (R.Cluster.client_node cluster)
  in
  Alcotest.(check bool) "service resumed after compaction" true
    (List.exists (fun (_, r) -> r <> None) results);
  quiesce cluster;
  R.Cluster.check_no_divergence cluster;
  check_digests_equal "digests converge after compacted failover" cluster

(* Divergence reports embed a rendered trace window. *)
let divergence_report_renders () =
  let buggy : R.App.factory =
   fun api ->
    let l = R.Api.lock api "rep.lock" in
    let n = ref 0 in
    {
      R.App.name = "buggy2";
      execute =
        (fun ~request:_ ->
          Rexsync.Lock.with_lock l (fun () -> incr n);
          (* unrecorded nondeterminism *)
          string_of_int (Hashtbl.hash (Engine.now ())));
      query = (fun ~request:_ -> "");
      write_checkpoint = (fun sink -> Codec.write_uvarint sink !n);
      read_checkpoint = (fun src -> n := Codec.read_uvarint src);
      digest = (fun () -> string_of_int !n);
    }
  in
  let cluster = R.Cluster.create ~seed:53 (cfg ()) buggy in
  R.Cluster.start cluster;
  let primary = R.Cluster.await_primary cluster in
  let done_ = ref 0 in
  ignore
    (Engine.spawn (R.Cluster.engine cluster) ~node:(R.Server.node primary)
       (fun () ->
         for _ = 1 to 30 do
           R.Server.submit primary "go" (fun _ -> incr done_)
         done));
  R.Cluster.run_for cluster 2.0;
  let report =
    Array.to_list (R.Cluster.servers cluster)
    |> List.find_map R.Server.divergence_report
  in
  match report with
  | Some r ->
    Alcotest.(check bool) "mentions the resource" true
      (let contains hay needle =
         let n = String.length needle and h = String.length hay in
         let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
         go 0
       in
       contains r "digraph" && contains r "rep.lock")
  | None -> Alcotest.fail "expected a divergence report"

let suite =
  suite
  @ [
      Alcotest.test_case "client redirect" `Quick client_redirects;
      Alcotest.test_case "checkpoint GC truncates" `Quick checkpoint_gc_truncates;
      Alcotest.test_case "compaction bounds trace" `Quick compaction_bounds_trace;
      Alcotest.test_case "divergence report renders" `Quick divergence_report_renders;
    ]

(* --- SMR baseline extras --- *)

(* Background timers under classic RSM are serialized as proposed
   pseudo-requests, so every replica runs the callback at the same point
   in the request order. *)
let smr_timers_serialized () =
  let eng = Engine.create ~seed:71 ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let config = cfg () in
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let servers =
    Array.init 3 (fun i ->
        Smr.create net rpc config ~node:i ~paxos_store:stores.(i)
          (Apps.Leveldb.factory ~memtable_limit:4 ~compaction_interval:5e-3 ()))
  in
  Array.iter Smr.start servers;
  Engine.run ~until:1.0 eng;
  let primary = Option.get (Array.find_opt Smr.is_primary servers) in
  let done_ = ref 0 in
  ignore
    (Engine.spawn eng ~node:(Smr.node primary) (fun () ->
         for i = 1 to 60 do
           Smr.submit primary (Printf.sprintf "SET t%d v%d" i i) (fun _ ->
               incr done_)
         done));
  Engine.run ~until:3.0 eng;
  Alcotest.(check int) "all replied" 60 !done_;
  Engine.run ~until:4.0 eng;
  (* Compaction (a timer) ran identically everywhere: digests equal even
     though the memtable/disktable split is part of the digest's input. *)
  let ds = Array.map Smr.app_digest servers in
  Alcotest.(check string) "0=1" ds.(0) ds.(1);
  Alcotest.(check string) "0=2" ds.(0) ds.(2)

let smr_failover () =
  let eng = Engine.create ~seed:73 ~cores_per_node:8 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let config = cfg () in
  let stores = Array.init 3 (fun _ -> Paxos.Store.create ()) in
  let mk i =
    let s = Smr.create net rpc config ~node:i ~paxos_store:stores.(i) (test_app ()) in
    Smr.start s;
    s
  in
  let servers = Array.init 3 mk in
  Engine.run ~until:1.0 eng;
  let cl = R.Client.create rpc ~me:3 ~replicas:[ 0; 1; 2 ] in
  let phase n = drive_requests cl (List.init n (fun i -> Printf.sprintf "INC s%d" (i mod 3))) eng 3 in
  ignore (phase 20);
  let leader = Option.get (Array.find_opt Smr.is_primary servers) in
  Engine.crash_node eng (Smr.node leader);
  Engine.run ~until:(Engine.clock eng +. 2.0) eng;
  let results = phase 20 in
  Alcotest.(check bool) "service resumed after SMR failover" true
    (List.exists (fun (_, r) -> r <> None) results);
  (* note: the crashed node stays down; the two live replicas agree *)
  Engine.run ~until:(Engine.clock eng +. 1.0) eng;
  let live =
    Array.to_list servers
    |> List.filter (fun s -> Engine.node_alive eng (Smr.node s))
  in
  match List.map Smr.app_digest live with
  | d :: rest -> List.iter (Alcotest.(check string) "smr live agree" d) rest
  | [] -> Alcotest.fail "no live replicas"

let suite =
  suite
  @ [
      Alcotest.test_case "smr timers serialized" `Quick smr_timers_serialized;
      Alcotest.test_case "smr failover" `Quick smr_failover;
    ]

(* --- Live topology: membership changes under traffic --- *)

let replace_replica_under_traffic () =
  let cluster = R.Cluster.create ~seed:67 (cfg ()) (test_app ()) in
  R.Cluster.start cluster;
  ignore (R.Cluster.await_primary cluster);
  let eng = R.Cluster.engine cluster in
  let cnode = R.Cluster.client_node cluster in
  let cl = R.Cluster.client cluster in
  ignore
    (drive_requests cl
       (List.init 30 (fun i -> Printf.sprintf "INC r%d" (i mod 3)))
       eng cnode);
  (* Replace a non-primary member: add node 4 (node 3 is the client),
     retire the victim, both through the replicated log. *)
  let primary0 = Option.get (R.Cluster.primary cluster) in
  let victim =
    List.find
      (fun n -> n <> R.Server.node primary0)
      (R.Cluster.members cluster)
  in
  let fresh = R.Cluster.replace_replica cluster victim in
  Alcotest.(check (list int)) "membership replaced"
    (List.sort compare
       (fresh :: List.filter (fun n -> n <> victim) [ 0; 1; 2 ]))
    (List.sort compare (R.Cluster.members cluster));
  Alcotest.(check bool) "victim is down" false
    (Engine.node_alive eng victim);
  (* Traffic keeps flowing against the new membership. *)
  let results =
    drive_requests cl
      (List.init 30 (fun i -> Printf.sprintf "INC r%d" (i mod 3)))
      eng cnode
  in
  Alcotest.(check int) "all answered after replacement" 30
    (List.length (List.filter (fun (_, r) -> r <> None) results));
  quiesce cluster;
  R.Cluster.check_no_divergence cluster;
  (* The newcomer bootstrapped to the same state as the survivors. *)
  check_digests_equal "digests converge incl newcomer" cluster;
  let newcomer = R.Cluster.server cluster fresh in
  Alcotest.(check bool) "newcomer is a full member" true
    (List.mem fresh (R.Server.peers newcomer))

let rolling_restart_preserves_service () =
  let cluster =
    R.Cluster.create ~seed:71 (cfg ~checkpoint_interval:(Some 0.5) ())
      (test_app ())
  in
  R.Cluster.start cluster;
  ignore (R.Cluster.await_primary cluster);
  let eng = R.Cluster.engine cluster in
  let cnode = R.Cluster.client_node cluster in
  let cl = R.Cluster.client cluster in
  ignore
    (drive_requests cl
       (List.init 30 (fun i -> Printf.sprintf "INC u%d" (i mod 3)))
       eng cnode);
  R.Cluster.rolling_restart cluster;
  Alcotest.(check (list int)) "membership unchanged" [ 0; 1; 2 ]
    (List.sort compare (R.Cluster.members cluster));
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "node %d back up" n)
        true
        (Engine.node_alive eng n))
    (R.Cluster.members cluster);
  let results =
    drive_requests cl
      (List.init 30 (fun i -> Printf.sprintf "INC u%d" (i mod 3)))
      eng cnode
  in
  Alcotest.(check int) "all answered after rolling restart" 30
    (List.length (List.filter (fun (_, r) -> r <> None) results));
  quiesce cluster;
  R.Cluster.check_no_divergence cluster;
  check_digests_equal "digests converge after rolling restart" cluster

let suite =
  suite
  @ [
      Alcotest.test_case "replace replica under traffic" `Quick
        replace_replica_under_traffic;
      Alcotest.test_case "rolling restart preserves service" `Quick
        rolling_restart_preserves_service;
    ]
