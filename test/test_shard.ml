(* Tests for lib/shard: the consistent-hash map (unit + qcheck
   properties for balance and minimal remapping), the routing client
   under scripted leader changes, scatter-gather partial failure, and a
   small two-group fleet driven end to end through a shard failover. *)

open Sim
module R = Rex_core
module Map_ = Shard.Shard_map
module Router = Shard.Router
module Fleet = Shard.Fleet

let keys ?(salt = 0) n = List.init n (fun i -> Printf.sprintf "key%d-%d" salt i)

(* --- Shard_map unit tests --- *)

let test_map_basics () =
  let m = Map_.create ~groups:[ 2; 0; 1; 1 ] () in
  Alcotest.(check (list int)) "groups sorted+distinct" [ 0; 1; 2 ] (Map_.groups m);
  Alcotest.(check int) "epoch" 0 (Map_.epoch m);
  Alcotest.(check int) "ring honors vnodes" (3 * 64) (Map_.ring_size m);
  let m96 = Map_.create ~vnodes:96 ~groups:[ 0; 1 ] () in
  Alcotest.(check int) "custom vnodes" (2 * 96) (Map_.ring_size m96);
  List.iter
    (fun k ->
      let g = Map_.group_of m k in
      Alcotest.(check bool) "maps to a member" true (Map_.contains m g);
      Alcotest.(check int) "deterministic" g (Map_.group_of m k))
    (keys 500);
  let shares = Map_.shares m (keys 500) in
  Alcotest.(check int) "shares sum to key count" 500
    (List.fold_left (fun a (_, c) -> a + c) 0 shares)

let test_map_membership () =
  let m = Map_.create ~groups:[ 0; 1 ] () in
  let m' = Map_.add_group m 5 in
  Alcotest.(check int) "epoch bumped" 1 (Map_.epoch m');
  Alcotest.(check (list int)) "member added" [ 0; 1; 5 ] (Map_.groups m');
  Alcotest.(check bool) "original untouched" false (Map_.contains m 5);
  let m'' = Map_.remove_group m' 0 in
  Alcotest.(check int) "epoch bumped again" 2 (Map_.epoch m'');
  Alcotest.(check (list int)) "member removed" [ 1; 5 ] (Map_.groups m'');
  Alcotest.check_raises "adding an existing group"
    (Invalid_argument "Shard_map.add_group: group exists") (fun () ->
      ignore (Map_.add_group m 1));
  Alcotest.check_raises "removing the last group"
    (Invalid_argument "Shard_map.remove_group: last group") (fun () ->
      ignore (Map_.remove_group (Map_.create ~groups:[ 3 ] ()) 3))

(* --- QCheck properties --- *)

(* With v vnodes per group the share of each group concentrates around
   1/n with relative deviation ~1/sqrt(v); 64 vnodes keep max/mean
   comfortably under 1.6 for up to 8 groups. *)
let prop_balanced =
  QCheck.Test.make ~name:"ring balanced within tolerance" ~count:30
    QCheck.(pair (int_range 1 8) small_int)
    (fun (n, salt) ->
      let m = Map_.create ~groups:(List.init n Fun.id) () in
      let ks = keys ~salt 4000 in
      let shares = Map_.shares m ks in
      let mean = 4000. /. float_of_int n in
      List.for_all (fun (_, c) -> float_of_int c <= 1.6 *. mean) shares)

let prop_minimal_remap_add =
  QCheck.Test.make ~name:"add_group remaps only to the new group, ~1/(n+1)"
    ~count:30
    QCheck.(pair (int_range 1 8) small_int)
    (fun (n, salt) ->
      let m = Map_.create ~groups:(List.init n Fun.id) () in
      let m' = Map_.add_group m n in
      let ks = keys ~salt 3000 in
      let moved =
        List.filter (fun k -> Map_.group_of m k <> Map_.group_of m' k) ks
      in
      (* exact: a key may only move to the newcomer *)
      List.for_all (fun k -> Map_.group_of m' k = n) moved
      (* statistical: the newcomer steals about its fair share *)
      && float_of_int (List.length moved)
         <= (2.5 /. float_of_int (n + 1) *. 3000.) +. 60.)

let prop_minimal_remap_remove =
  QCheck.Test.make ~name:"remove_group remaps only the removed group's keys"
    ~count:30
    QCheck.(pair (int_range 2 8) small_int)
    (fun (n, salt) ->
      let m = Map_.create ~groups:(List.init n Fun.id) () in
      let victim = n / 2 in
      let m' = Map_.remove_group m victim in
      keys ~salt 3000
      |> List.for_all (fun k ->
             let before = Map_.group_of m k in
             let after = Map_.group_of m' k in
             if before = victim then after <> victim else after = before))

(* --- Router under scripted leader changes --- *)

(* Three fake replicas whose leadership is a mutable cell: followers
   answer [Not_leader (Some leader)], the leader echoes the request.
   Node [-1] means "no leader anywhere" (everyone redirects with no
   hint); a crashed node times out instead. *)
(* The router wraps requests in session envelopes; fake replicas unwrap
   to echo the logical payload like a real frontend would. *)
let payload_of req =
  match R.Session.Envelope.decode req with
  | Some e -> e.R.Session.Envelope.payload
  | None -> req

let make_scripted_group () =
  let eng = Engine.create ~seed:11 ~num_nodes:4 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  let leader = ref 0 in
  for node = 0 to 2 do
    Rpc.serve rpc ~node ~port:R.Client.client_port (fun ~src:_ req ->
        R.Client.encode_reply
          (if !leader = node then R.Client.Ok_reply ("done:" ^ payload_of req)
           else R.Client.Not_leader (if !leader < 0 then None else Some !leader)))
  done;
  let map = Map_.create ~groups:[ 0 ] () in
  let router = Router.create net rpc ~me:3 ~map ~groups:[ (0, [ 0; 1; 2 ]) ] in
  (eng, router, leader)

let in_fiber eng f =
  let result = ref None in
  ignore (Engine.spawn eng ~node:3 (fun () -> result := Some (f ())));
  Engine.run ~until:(Engine.clock eng +. 30.) eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "fiber did not finish"

let test_router_redirects () =
  let eng, router, leader = make_scripted_group () in
  let reply = in_fiber eng (fun () -> Router.call router ~key:"a" "R1") in
  Alcotest.(check (option string)) "direct hit" (Some "done:R1") reply;
  Alcotest.(check int) "no redirects yet" 0 (Router.stats router).Router.redirects;
  (* leadership moves: the stale hint gets one redirect, then sticks *)
  leader := 2;
  let reply = in_fiber eng (fun () -> Router.call router ~key:"a" "R2") in
  Alcotest.(check (option string)) "after redirect" (Some "done:R2") reply;
  Alcotest.(check int) "one redirect" 1 (Router.stats router).Router.redirects;
  Alcotest.(check int) "hint refreshed" 2 (Router.leader_hint router ~group:0);
  let reply = in_fiber eng (fun () -> Router.call router ~key:"a" "R3") in
  Alcotest.(check (option string)) "hint reused" (Some "done:R3") reply;
  Alcotest.(check int) "still one redirect" 1
    (Router.stats router).Router.redirects

let test_router_retries_dead_node () =
  let eng, router, leader = make_scripted_group () in
  ignore (in_fiber eng (fun () -> Router.call router ~key:"a" "warm"));
  (* the believed leader dies; a new one is elected elsewhere *)
  leader := 1;
  Engine.crash_node eng 0;
  let reply =
    in_fiber eng (fun () -> Router.call router ~timeout:0.02 ~key:"a" "R")
  in
  Alcotest.(check (option string)) "failed over" (Some "done:R") reply;
  Alcotest.(check bool) "timeout counted as retry" true
    ((Router.stats router).Router.retries >= 1);
  Alcotest.(check int) "hint left the dead node" 1
    (Router.leader_hint router ~group:0)

let test_router_gives_up () =
  let eng, router, leader = make_scripted_group () in
  leader := -1;
  let reply =
    in_fiber eng (fun () -> Router.call router ~retries:3 ~key:"a" "R")
  in
  Alcotest.(check (option string)) "exhausted retries" None reply;
  Alcotest.(check int) "failure counted" 1 (Router.stats router).Router.failures;
  leader := 1;
  let reply = in_fiber eng (fun () -> Router.call router ~key:"a" "R2") in
  Alcotest.(check (option string)) "recovers afterwards" (Some "done:R2") reply

(* --- Scatter-gather with a dead group --- *)

let test_multi_call_partial_failure () =
  let eng = Engine.create ~seed:13 ~num_nodes:7 () in
  let net = Net.create eng in
  let rpc = Rpc.create net in
  (* group 0 (nodes 0-2) healthy with node 0 leading; group 1 (nodes
     3-5) never answers *)
  for node = 0 to 2 do
    Rpc.serve rpc ~node ~port:R.Client.client_port (fun ~src:_ req ->
        R.Client.encode_reply
          (if node = 0 then R.Client.Ok_reply ("done:" ^ payload_of req)
           else R.Client.Not_leader (Some 0)))
  done;
  let map = Map_.create ~groups:[ 0; 1 ] () in
  let router =
    Router.create net rpc ~me:6 ~map
      ~groups:[ (0, [ 0; 1; 2 ]); (1, [ 3; 4; 5 ]) ]
  in
  let key_in ?(avoid = []) g =
    let rec go i =
      let k = Printf.sprintf "k%d" i in
      if Router.group_of router k = g && not (List.mem k avoid) then k
      else go (i + 1)
    in
    go 0
  in
  let k0 = key_in 0 in
  let k0' = key_in ~avoid:[ k0 ] 0 in
  let k1 = key_in 1 in
  let batch = [ (k0, "A"); (k1, "B"); (k0', "C") ] in
  let result = ref None in
  ignore
    (Engine.spawn eng ~node:6 (fun () ->
         result := Some (Router.multi_call ~retries:2 ~timeout:0.02 router batch)));
  Engine.run ~until:5.0 eng;
  match !result with
  | None -> Alcotest.fail "multi_call did not finish"
  | Some m ->
    Alcotest.(check bool) "not all ok" false (Router.multi_ok m);
    Alcotest.(check (list int)) "dead group reported" [ 1 ] m.Router.failed_groups;
    Alcotest.(check int) "input order kept" 3 (Array.length m.Router.outcomes);
    let outcome k =
      let _, o = Array.to_list m.Router.outcomes |> List.find (fun (k', _) -> k' = k) in
      o
    in
    (match outcome k0 with
    | Router.Reply r -> Alcotest.(check string) "g0 first reply" "done:A" r
    | Router.Failed _ -> Alcotest.fail "g0 key failed");
    (match outcome k0' with
    | Router.Reply r -> Alcotest.(check string) "g0 second reply" "done:C" r
    | Router.Failed _ -> Alcotest.fail "g0 key failed");
    match outcome k1 with
    | Router.Failed { group } -> Alcotest.(check int) "g1 key failed" 1 group
    | Router.Reply _ -> Alcotest.fail "dead group replied"

(* --- Two-group fleet end to end, through a shard failover --- *)

let test_fleet_failover () =
  let fleet =
    Fleet.create ~seed:19 ~groups:2 (fun ~map ~group ->
        Shard.Partition.factory ~map ~group (Apps.Memcache.factory ()))
  in
  let eng = Fleet.engine fleet in
  Fleet.start fleet;
  Fleet.await_primaries fleet;
  let router = Fleet.router fleet in
  let n = 400 in
  let completed = ref 0 and failed = ref 0 and launched = ref 0 in
  let gen = Workload.Mix.kv_keyed ~n_keys:500 ~read_ratio:0.0 () in
  let rng = Rng.create 3 in
  for _ = 1 to 8 do
    ignore
      (Engine.spawn eng ~node:(Fleet.client_node fleet) (fun () ->
           while !launched < n do
             incr launched;
             let key, request = gen rng in
             match Router.call router ~key request with
             | Some _ -> incr completed
             | None -> incr failed
           done))
  done;
  (* kill group 1's primary mid-run; the router must ride through *)
  let killed = ref None in
  ignore
    (Engine.spawn eng ~node:(Fleet.client_node fleet) (fun () ->
         while !completed < n / 2 do
           Engine.sleep 0.01
         done;
         killed := Fleet.crash_primary fleet 1));
  let deadline = Engine.clock eng +. 120. in
  while !completed + !failed < n && Engine.clock eng < deadline do
    Engine.run ~until:(Engine.clock eng +. 0.5) eng
  done;
  Alcotest.(check bool) "a primary was killed" true (!killed <> None);
  Alcotest.(check int) "every request answered" n (!completed + !failed);
  Alcotest.(check int) "no request lost to the failover" n !completed;
  Alcotest.(check bool) "both groups committed" true
    (Fleet.replies fleet 0 > 0 && Fleet.replies fleet 1 > 0);
  Fleet.run_for fleet 2.0;
  Fleet.check_no_divergence fleet;
  Alcotest.(check bool) "every group converged" true (Fleet.converged fleet);
  (* the partition adapter rejects a key routed to the wrong group *)
  let wrong_key =
    let rec go i =
      let k = Printf.sprintf "wk%d" i in
      if Router.group_of router k = 1 then k else go (i + 1)
    in
    go 0
  in
  let reply = ref None in
  ignore
    (Engine.spawn eng ~node:(Fleet.client_node fleet) (fun () ->
         reply :=
           Router.call_group router ~group:0 (Printf.sprintf "SET %s v" wrong_key)));
  Fleet.run_for fleet 5.0;
  (* the rejection carries the responder's map spec for router refresh *)
  (match !reply with
  | Some resp -> (
    match Shard.Partition.classify resp with
    | `Wrong_shard (Some m) ->
      Alcotest.(check int) "redirect spec epoch" 0 (Shard.Shard_map.epoch m)
    | `Wrong_shard None -> Alcotest.fail "wrong-shard reply lost its spec"
    | `Migrating _ | `App -> Alcotest.fail ("unexpected reply: " ^ resp))
  | None -> Alcotest.fail "misrouted request got no reply")

(* --- Live split and merge under traffic --- *)

let test_live_split_merge () =
  let fleet =
    Fleet.create ~seed:23 ~groups:2 (fun ~map ~group ->
        Shard.Partition.factory ~map ~group (Apps.Memcache.factory ()))
  in
  let eng = Fleet.engine fleet in
  Fleet.start fleet;
  Fleet.await_primaries fleet;
  let router = Fleet.router fleet in
  (* Seed keys the traffic never rewrites: after split + merge they must
     still read their original values, proving both migrations carried
     the data. *)
  let n_stable = 40 in
  let stable k = Printf.sprintf "stable%d" k in
  let seeded = ref 0 in
  ignore
    (Engine.spawn eng ~node:(Fleet.client_node fleet) (fun () ->
         for k = 0 to n_stable - 1 do
           (match
              Router.call router ~key:(stable k)
                (Printf.sprintf "SET %s v%d" (stable k) k)
            with
           | Some "STORED" -> incr seeded
           | Some other -> Alcotest.fail ("seed SET replied " ^ other)
           | None -> Alcotest.fail "seed SET timed out")
         done));
  let deadline = Engine.clock eng +. 60. in
  while !seeded < n_stable && Engine.clock eng < deadline do
    Fleet.run_for fleet 0.5
  done;
  Alcotest.(check int) "all stable keys seeded" n_stable !seeded;
  (* continuous keyed traffic across both topology changes *)
  let n = 400 in
  let completed = ref 0 and failed = ref 0 and launched = ref 0 in
  let gen = Workload.Mix.kv_keyed ~n_keys:300 ~read_ratio:0.2 () in
  let rng = Rng.create 5 in
  for _ = 1 to 8 do
    ignore
      (Engine.spawn eng ~node:(Fleet.client_node fleet) (fun () ->
           while !launched < n do
             incr launched;
             let key, request = gen rng in
             match Router.call router ~key request with
             | Some _ -> incr completed
             | None -> incr failed
           done))
  done;
  let pump_until target =
    let deadline = Engine.clock eng +. 120. in
    while !completed + !failed < target && Engine.clock eng < deadline do
      Fleet.run_for fleet 0.2
    done
  in
  pump_until (n / 4);
  (* split while the traffic fibers are mid-flight *)
  let g = Fleet.split fleet in
  Alcotest.(check int) "split created group 2" 2 g;
  Alcotest.(check int) "epoch after split" 1 (Map_.epoch (Fleet.map fleet));
  Alcotest.(check (list int)) "split joins the map" [ 0; 1; 2 ]
    (Fleet.active_groups fleet);
  pump_until (n / 2);
  (* and merge it back out, still under traffic *)
  Fleet.merge fleet g;
  Alcotest.(check int) "epoch after merge" 2 (Map_.epoch (Fleet.map fleet));
  Alcotest.(check (list int)) "merge leaves the map" [ 0; 1 ]
    (Fleet.active_groups fleet);
  pump_until n;
  Alcotest.(check int) "every request answered" n (!completed + !failed);
  Alcotest.(check int) "no request lost to the migrations" n !completed;
  (* the seeded keys survived the round trip *)
  let checked = ref 0 in
  ignore
    (Engine.spawn eng ~node:(Fleet.client_node fleet) (fun () ->
         for k = 0 to n_stable - 1 do
           (match
              Router.call router ~key:(stable k)
                (Printf.sprintf "GET %s" (stable k))
            with
           | Some v ->
             Alcotest.(check string)
               (Printf.sprintf "stable%d survives split+merge" k)
               (Printf.sprintf "v%d" k) v;
             incr checked
           | None -> Alcotest.fail "readback timed out")
         done));
  let deadline = Engine.clock eng +. 60. in
  while !checked < n_stable && Engine.clock eng < deadline do
    Fleet.run_for fleet 0.5
  done;
  Alcotest.(check int) "all stable keys read back" n_stable !checked;
  Fleet.run_for fleet 2.0;
  Fleet.check_no_divergence fleet;
  Alcotest.(check bool) "every group converged" true (Fleet.converged fleet);
  let obs = Engine.obs eng in
  Alcotest.(check int) "two migrations recorded" 2
    (Obs.Metric.value (Obs.counter obs ~subsystem:"shard" "migrations"));
  Alcotest.(check bool) "migrated keys counted" true
    (Obs.Metric.value (Obs.counter obs ~subsystem:"shard" "migrated_keys") > 0)

(* --- Epoch-transition properties --- *)

let prop_epochs_monotone =
  QCheck.Test.make ~name:"membership changes bump the epoch by exactly 1"
    ~count:50
    QCheck.(list_of_size Gen.(int_range 1 12) (int_range 0 1))
    (fun steps ->
      let next = ref 2 in
      let m = ref (Map_.create ~groups:[ 0; 1 ] ()) in
      List.for_all
        (fun step ->
          let before = Map_.epoch !m in
          (match step with
          | 0 ->
            m := Map_.add_group !m !next;
            incr next
          | _ ->
            (* keep at least two groups so remove never hits "last group" *)
            if List.length (Map_.groups !m) > 2 then
              m := Map_.remove_group !m (List.hd (Map_.groups !m))
            else begin
              m := Map_.add_group !m !next;
              incr next
            end);
          Map_.epoch !m = before + 1)
        steps)

let prop_split_merge_roundtrip =
  QCheck.Test.make
    ~name:"add_group then remove_group restores every key's owner" ~count:30
    QCheck.(pair (int_range 1 6) small_int)
    (fun (n, salt) ->
      let m = Map_.create ~groups:(List.init n Fun.id) () in
      let m' = Map_.remove_group (Map_.add_group m n) n in
      Map_.epoch m' = Map_.epoch m + 2
      && keys ~salt 2000
         |> List.for_all (fun k -> Map_.group_of m k = Map_.group_of m' k))

let prop_spec_roundtrip =
  QCheck.Test.make ~name:"encode_spec / decode_spec round-trips the map"
    ~count:50
    QCheck.(pair (int_range 1 8) (int_range 1 128))
    (fun (n, vnodes) ->
      let m0 = Map_.create ~vnodes ~groups:(List.init n (fun i -> 3 * i)) () in
      (* push the epoch up so it is exercised too *)
      let m = Map_.remove_group (Map_.add_group m0 100) 100 in
      match Map_.decode_spec (Map_.encode_spec m) with
      | None -> false
      | Some m' ->
        Map_.epoch m' = Map_.epoch m
        && Map_.groups m' = Map_.groups m
        && Map_.ring_size m' = Map_.ring_size m
        && keys 500 |> List.for_all (fun k -> Map_.group_of m' k = Map_.group_of m k))

let suite =
  [
    Alcotest.test_case "shard_map basics" `Quick test_map_basics;
    Alcotest.test_case "shard_map membership" `Quick test_map_membership;
    QCheck_alcotest.to_alcotest prop_balanced;
    QCheck_alcotest.to_alcotest prop_minimal_remap_add;
    QCheck_alcotest.to_alcotest prop_minimal_remap_remove;
    Alcotest.test_case "router follows redirects" `Quick test_router_redirects;
    Alcotest.test_case "router retries past a dead node" `Quick
      test_router_retries_dead_node;
    Alcotest.test_case "router gives up after retries" `Quick
      test_router_gives_up;
    Alcotest.test_case "multi_call partial failure" `Quick
      test_multi_call_partial_failure;
    Alcotest.test_case "two-group fleet failover" `Quick test_fleet_failover;
    Alcotest.test_case "live split and merge under traffic" `Quick
      test_live_split_merge;
    QCheck_alcotest.to_alcotest prop_epochs_monotone;
    QCheck_alcotest.to_alcotest prop_split_merge_roundtrip;
    QCheck_alcotest.to_alcotest prop_spec_roundtrip;
  ]
