let () =
  Alcotest.run "rex"
    [ ("codec", Test_codec.suite); ("obs", Test_obs.suite); ("sim", Test_sim.suite); ("trace", Test_trace.suite); ("rexsync", Test_rexsync.suite); ("paxos", Test_paxos.suite); ("lease", Test_lease.suite); ("rex", Test_rex.suite); ("apps", Test_apps.suite); ("shard", Test_shard.suite); ("integration", Test_integration.suite); ("eve", Test_eve.suite); ("session", Test_session.suite); ("check", Test_check.suite); ("smoke", Test_smoke.suite); ("par", Test_par.suite); ("sched", Test_sched.suite); ("load", Test_load.suite) ]
