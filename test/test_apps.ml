(* Unit tests for the six evaluation applications, run natively (no
   replication): request semantics, background tasks, checkpoint
   roundtrips, and the disk model. *)

open Sim
module R = Rex_core

(* Run an app standalone: build it over a native runtime, spawn its
   timers as plain periodic fibers, execute [script app] in a fiber. *)
let run_native ?(seed = 9) ?(cores = 8) ?(until = 60.) factory script =
  let eng = Engine.create ~seed ~cores_per_node:cores ~num_nodes:1 () in
  let rt = Rexsync.Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:1 in
  let api = R.Api.make rt in
  let app : R.App.t = factory api in
  let timers = R.Api.seal api in
  List.iter
    (fun (spec : R.Api.timer_spec) ->
      ignore
        (Engine.spawn eng ~node:0 ~name:spec.t_name (fun () ->
             while true do
               Engine.sleep spec.t_interval;
               spec.t_callback ()
             done)))
    timers;
  let finished = ref false in
  ignore
    (Engine.spawn eng ~node:0 ~name:"script" (fun () ->
         script app;
         finished := true));
  Engine.run ~until eng;
  Alcotest.(check bool) "script completed" true !finished;
  app

let exec (app : R.App.t) req = app.execute ~request:req

let checkpoint_roundtrip factory (app : R.App.t) =
  let sink = Codec.sink () in
  app.write_checkpoint sink;
  let eng = Engine.create ~num_nodes:1 () in
  let rt = Rexsync.Runtime.create (Par.Backend.of_sim eng) ~node:0 ~slots:1 in
  let api = R.Api.make rt in
  let app2 : R.App.t = factory api in
  ignore (R.Api.seal api);
  app2.read_checkpoint (Codec.source (Codec.contents sink));
  Alcotest.(check string) "checkpoint roundtrip preserves digest"
    (app.digest ()) (app2.digest ())

(* --- Thumbnail --- *)

let thumbnail_semantics () =
  let factory = Apps.Thumbnail.factory ~compute_cost:1e-4 () in
  let app =
    run_native factory (fun app ->
        let t1 = exec app "THUMB 42 64" in
        Alcotest.(check string) "computed" "tn-42-64" t1;
        let before = Engine.now () in
        let t2 = exec app "THUMB 42 64" in
        Alcotest.(check string) "cache hit" "tn-42-64" t2;
        Alcotest.(check bool) "hit is cheap" true (Engine.now () -. before < 1e-4);
        Alcotest.(check string) "bad request" "ERR:bad-request" (exec app "NOPE");
        Alcotest.(check string) "hits query" "1" (app.query ~request:"HITS 42"))
  in
  checkpoint_roundtrip (Apps.Thumbnail.factory ()) app

(* --- Lock server --- *)

let lock_server_semantics () =
  let factory = Apps.Lock_server.factory () in
  let app =
    run_native factory (fun app ->
        Alcotest.(check string) "renew missing" "ERR:no-such-lock" (exec app "RENEW /a");
        Alcotest.(check string) "create" "OK" (exec app "CREATE /a 1000");
        Alcotest.(check string) "create dup" "ERR:exists" (exec app "CREATE /a 1000");
        Alcotest.(check string) "renew" "LEASE 2" (exec app "RENEW /a");
        Alcotest.(check string) "renew again" "LEASE 3" (exec app "RENEW /a");
        Alcotest.(check string) "update" "GEN 2" (exec app "UPDATE /a 2000");
        Alcotest.(check string) "read" "SIZE 2000 GEN 2" (exec app "READ /a"))
  in
  checkpoint_roundtrip factory app

(* --- File system --- *)

let filesys_semantics () =
  let factory = Apps.Filesys.factory () in
  let app =
    run_native factory (fun app ->
        Alcotest.(check string) "read fresh" "DATA 0" (exec app "READ 3 16384 16384");
        Alcotest.(check string) "write" "OK 1" (exec app "WRITE 3 16384 16384");
        Alcotest.(check string) "write again" "OK 2" (exec app "WRITE 3 16384 16384");
        Alcotest.(check string) "read back" "DATA 2" (exec app "READ 3 16384 16384");
        Alcotest.(check string) "bad file" "ERR:bad-file" (exec app "READ 99 0 16384"))
  in
  checkpoint_roundtrip factory app

let sim_disk_concurrency () =
  (* 20 IOs serially vs 20 IOs concurrently: NCQ must overlap seeks. *)
  let eng = Engine.create ~num_nodes:1 ~cores_per_node:8 () in
  let disk = Apps.Sim_disk.create (Par.Backend.of_sim eng) in
  let serial_done = ref 0. in
  ignore
    (Engine.spawn eng ~node:0 (fun () ->
         for _ = 1 to 20 do
           Apps.Sim_disk.io disk ~bytes_len:16384
         done;
         serial_done := Engine.now ()));
  Engine.run eng;
  let serial_elapsed = !serial_done in
  let eng2 = Engine.create ~num_nodes:1 ~cores_per_node:8 () in
  let disk2 = Apps.Sim_disk.create (Par.Backend.of_sim eng2) in
  let finish = ref 0. in
  for _ = 1 to 20 do
    ignore
      (Engine.spawn eng2 ~node:0 (fun () ->
           Apps.Sim_disk.io disk2 ~bytes_len:16384;
           finish := Float.max !finish (Engine.now ())))
  done;
  Engine.run eng2;
  Alcotest.(check bool)
    (Printf.sprintf "concurrent %.3fs < serial %.3fs / 2" !finish serial_elapsed)
    true
    (!finish < serial_elapsed /. 2.);
  Alcotest.(check int) "all ios" 20 (Apps.Sim_disk.ios_completed disk2)

(* --- LevelDB --- *)

let leveldb_semantics () =
  let factory = Apps.Leveldb.factory ~memtable_limit:4 ~compaction_interval:1e-3 () in
  let app =
    run_native factory (fun app ->
        Alcotest.(check string) "get missing" "NOTFOUND" (exec app "GET k1");
        Alcotest.(check string) "set" "OK" (exec app "SET k1 v1");
        Alcotest.(check string) "get" "v1" (exec app "GET k1");
        Alcotest.(check string) "overwrite" "OK" (exec app "SET k1 v2");
        Alcotest.(check string) "get new" "v2" (exec app "GET k1");
        Alcotest.(check string) "del" "OK" (exec app "DEL k1");
        Alcotest.(check string) "deleted" "NOTFOUND" (exec app "GET k1");
        (* Fill past the memtable limit, then give compaction time. *)
        for i = 0 to 19 do
          ignore (exec app (Printf.sprintf "SET key%d val%d" i i))
        done;
        Engine.sleep 0.05;
        for i = 0 to 19 do
          Alcotest.(check string)
            (Printf.sprintf "key%d survives compaction" i)
            (Printf.sprintf "val%d" i)
            (exec app (Printf.sprintf "GET key%d" i))
        done;
        Alcotest.(check string) "mget" "val1,val2" (exec app "MGET key1 key2");
        Alcotest.(check string) "rmw" "RMW:ok" (exec app "RMW key1 zz");
        Alcotest.(check string) "rmw result" "zz" (exec app "GET key1"))
  in
  checkpoint_roundtrip (Apps.Leveldb.factory ()) app

let leveldb_stall_recovers () =
  (* Push way past the stall limit: writers must block and then be
     released by compaction rather than deadlock. *)
  let factory =
    Apps.Leveldb.factory ~memtable_limit:8 ~stall_limit:32
      ~compaction_interval:1e-3 ()
  in
  ignore
    (run_native factory (fun app ->
         for i = 0 to 199 do
           Alcotest.(check string) "set ok" "OK"
             (exec app (Printf.sprintf "SET s%d v" i))
         done))

(* --- Kyoto --- *)

let kyoto_semantics () =
  let factory = Apps.Kyoto.factory () in
  let app =
    run_native factory (fun app ->
        Alcotest.(check string) "set" "OK" (exec app "SET a 1");
        Alcotest.(check string) "set b" "OK" (exec app "SET b 2");
        Alcotest.(check string) "get" "1" (exec app "GET a");
        Alcotest.(check string) "count" "2" (exec app "COUNT");
        Alcotest.(check string) "del" "OK" (exec app "DEL a");
        Alcotest.(check string) "count after del" "1" (exec app "COUNT");
        Alcotest.(check string) "get deleted" "NOTFOUND" (exec app "GET a");
        Alcotest.(check string) "mget" "2,NOTFOUND" (exec app "MGET b zz");
        Alcotest.(check string) "rmw new" "RMW:new" (exec app "RMW c 9");
        Alcotest.(check string) "rmw existing" "RMW:ok" (exec app "RMW c 10");
        Alcotest.(check string) "rmw result" "10" (exec app "GET c"))
  in
  checkpoint_roundtrip factory app

(* --- Memcached --- *)

let memcache_semantics () =
  let factory = Apps.Memcache.factory ~capacity:4 () in
  let app =
    run_native factory (fun app ->
        Alcotest.(check string) "set" "STORED" (exec app "SET a 1");
        Alcotest.(check string) "get" "1" (exec app "GET a");
        Alcotest.(check string) "miss" "NOTFOUND" (exec app "GET nope");
        Alcotest.(check string) "del" "DELETED" (exec app "DEL a");
        (* Overflow the tiny capacity: eviction must kick in. *)
        for i = 0 to 9 do
          ignore (exec app (Printf.sprintf "SET e%d v" i))
        done;
        let stats = exec app "STATS" in
        Alcotest.(check bool)
          (Printf.sprintf "evictions counted (%s)" stats)
          true
          (not (String.ends_with ~suffix:"evictions=0" stats)))
  in
  checkpoint_roundtrip (Apps.Memcache.factory ()) app

(* --- Workload generators --- *)

let zipf_skew () =
  let rng = Rng.create 5 in
  let z = Workload.Zipf.create ~n:1000 ~theta:0.99 in
  let counts = Array.make 1000 0 in
  for _ = 1 to 10_000 do
    let r = Workload.Zipf.sample z rng in
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 0 is hot" true (counts.(0) > counts.(500) * 10);
  let uniform = Workload.Zipf.create ~n:10 ~theta:0. in
  let ucounts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let r = Workload.Zipf.sample uniform rng in
    ucounts.(r) <- ucounts.(r) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "roughly uniform" true (c > 700 && c < 1300))
    ucounts

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf sample in range" ~count:200
    QCheck.(pair small_int (int_range 1 500))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let z = Workload.Zipf.create ~n ~theta:0.9 in
      let r = Workload.Zipf.sample z rng in
      r >= 0 && r < n)

let mix_formats () =
  let rng = Rng.create 7 in
  for _ = 1 to 50 do
    (match Apps.Util.words (Workload.Mix.lock_server ~n_files:100 rng) with
    | [ "RENEW"; _ ] -> ()
    | [ ("CREATE" | "UPDATE"); _; size; payload ] ->
      Alcotest.(check int)
        "payload bytes match the declared size" (int_of_string size)
        (String.length payload)
    | other -> Alcotest.fail (String.concat " " (List.map (fun w -> String.sub w 0 (min 20 (String.length w))) other)));
    (match Apps.Util.words (Workload.Mix.filesystem ~n_files:64 rng) with
    | [ ("READ" | "WRITE"); _; _; "16384" ] -> ()
    | other -> Alcotest.fail (String.concat " " other));
    match Apps.Util.words (Workload.Mix.kv () rng) with
    | [ "GET"; k ] | [ "SET"; k; _ ] ->
      Alcotest.(check int) "16-byte key" 16 (String.length k)
    | other -> Alcotest.fail (String.concat " " other)
  done

let lock_server_mix_ratio () =
  let rng = Rng.create 11 in
  let renews = ref 0 and total = 5000 in
  for _ = 1 to total do
    match Apps.Util.words (Workload.Mix.lock_server ~n_files:1000 rng) with
    | "RENEW" :: _ -> incr renews
    | _ -> ()
  done;
  let ratio = float_of_int !renews /. float_of_int total in
  Alcotest.(check bool)
    (Printf.sprintf "~90%% renews (got %.2f)" ratio)
    true
    (ratio > 0.85 && ratio < 0.95)

let suite =
  [
    Alcotest.test_case "thumbnail" `Quick thumbnail_semantics;
    Alcotest.test_case "lock server" `Quick lock_server_semantics;
    Alcotest.test_case "filesys" `Quick filesys_semantics;
    Alcotest.test_case "sim_disk NCQ" `Quick sim_disk_concurrency;
    Alcotest.test_case "leveldb" `Quick leveldb_semantics;
    Alcotest.test_case "leveldb stall" `Quick leveldb_stall_recovers;
    Alcotest.test_case "kyoto" `Quick kyoto_semantics;
    Alcotest.test_case "memcached" `Quick memcache_semantics;
    Alcotest.test_case "zipf skew" `Quick zipf_skew;
    QCheck_alcotest.to_alcotest prop_zipf_in_range;
    Alcotest.test_case "mix formats" `Quick mix_formats;
    Alcotest.test_case "lock-server mix ratio" `Quick lock_server_mix_ratio;
  ]
